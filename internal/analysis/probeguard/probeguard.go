// Package probeguard enforces the observability layer's pay-only-if-
// enabled contract: every emission through an obs.Probe interface
// value must sit behind a nil check on that same probe expression,
// and the obs.Event payload must be built inside the guard — a
// payload assembled before the check costs field copies even when
// probes are disabled.
//
// Two guard shapes are recognised:
//
//	if ctl.Probe != nil {
//	        ctl.Probe.Emit(obs.Event{...})      // form A: enclosing if
//	}
//
//	if g.Probe == nil {
//	        return
//	}
//	...
//	g.Probe.Emit(ev)                            // form B: early return
//
// Functions that take an already-checked probe (the caller owns the
// guard) are annotated //simvet:guarded with a reason, which silences
// the check for the emissions inside them.
package probeguard

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the probe-emission guard check.
var Analyzer = &analysis.Analyzer{
	Name: "probeguard",
	Doc: "obs.Probe emissions must be nil-guarded and build their Event payload inside the guard " +
		"(escape: //simvet:guarded)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		f := file
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv := probeEmission(pass, call)
			if recv == nil {
				return true
			}
			checkEmission(pass, f, call, recv, stack)
			return true
		})
	}
	return nil
}

// probeEmission reports whether call is `<expr>.Emit(...)` on a value
// whose static type is the obs.Probe interface, returning the
// receiver expression (nil otherwise).
func probeEmission(pass *analysis.Pass, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Emit" {
		return nil
	}
	t := pass.TypeOf(sel.X)
	if t == nil || !isProbeInterface(t) {
		return nil
	}
	return sel.X
}

// isProbeInterface matches the interface type named Probe declared in
// an observability package (import path ending in internal/obs).
func isProbeInterface(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	if _, iface := named.Underlying().(*types.Interface); !iface {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Probe" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "internal/obs" || strings.HasSuffix(path, "/internal/obs")
}

func checkEmission(pass *analysis.Pass, file *ast.File, call *ast.CallExpr, recv ast.Expr, stack []ast.Node) {
	if pass.Annotated(file, stack, "guarded") {
		return
	}
	guard := guardOf(pass, recv, stack)
	if guard == nil {
		pass.Reportf(call.Pos(),
			"unguarded probe emission: wrap in `if %s != nil { ... }` or guard with an early return (//simvet:guarded if the caller checks)",
			types.ExprString(recv))
		return
	}
	checkPayload(pass, file, call, guard, stack)
}

// guardOf finds the statement that establishes recv != nil for this
// emission: an enclosing `if recv != nil` (form A) or a preceding
// `if recv == nil { return }` in the same block (form B). It returns
// the guarding statement, or nil.
func guardOf(pass *analysis.Pass, recv ast.Expr, stack []ast.Node) ast.Stmt {
	want := types.ExprString(recv)
	// Form A: any enclosing if whose condition implies recv != nil on
	// the branch the emission sits in — the then-branch of `!= nil`,
	// or the else-branch of `== nil`.
	for i, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		inElse := i+1 < len(stack) && stack[i+1] == ast.Node(ifs.Else)
		if !inElse && condImpliesNonNil(ifs.Cond, want) {
			return ifs
		}
		if inElse && condImpliesNil(ifs.Cond, want) {
			return ifs
		}
	}
	// Form B: walk enclosing blocks; in each, look at statements before
	// the one containing the emission for `if recv == nil { return }`.
	for i := len(stack) - 1; i > 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		inner := stack[i+1] // the statement within block on our path
		for _, st := range block.List {
			if st == inner {
				break
			}
			ifs, ok := st.(*ast.IfStmt)
			if !ok || ifs.Else != nil {
				continue
			}
			if !condImpliesNil(ifs.Cond, want) {
				continue
			}
			if terminates(ifs.Body) {
				return ifs
			}
		}
	}
	return nil
}

// condImpliesNonNil reports whether cond guarantees `want != nil`
// when true: the comparison itself, or a conjunction containing it.
func condImpliesNonNil(cond ast.Expr, want string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "!=":
			return nilCompare(c, want)
		case "&&":
			return condImpliesNonNil(c.X, want) || condImpliesNonNil(c.Y, want)
		}
	}
	return false
}

// condImpliesNil reports whether the fallthrough path (cond false)
// guarantees `want != nil`: the bare `want == nil` comparison, or a
// disjunction containing it — when the guard body terminates, code
// after the if runs only with every disjunct false.
func condImpliesNil(cond ast.Expr, want string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "==":
			return nilCompare(c, want)
		case "||":
			// `if a == nil || b == nil { return }` guards both a and b.
			return condImpliesNil(c.X, want) || condImpliesNil(c.Y, want)
		}
	}
	return false
}

// nilCompare reports whether the comparison is between the probe
// expression (by printed form) and nil.
func nilCompare(c *ast.BinaryExpr, want string) bool {
	x, y := types.ExprString(ast.Unparen(c.X)), types.ExprString(ast.Unparen(c.Y))
	return (x == want && y == "nil") || (y == want && x == "nil")
}

// terminates reports whether the block unconditionally leaves the
// surrounding function or loop iteration.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// checkPayload flags Event payloads assembled before the guard: an
// identifier argument whose variable is declared outside the guarding
// statement's span (form A) or before the guard statement (form B).
func checkPayload(pass *analysis.Pass, file *ast.File, call *ast.CallExpr, guard ast.Stmt, stack []ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	id, ok := arg.(*ast.Ident)
	if !ok {
		return // composite literal or call built in place
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Parent() == pass.Pkg.Scope() {
		return // package state is paid for once, not per emission
	}
	// Parameters are the caller's problem (and the caller's guard).
	if isParamOf(pass, stack, v) {
		return
	}
	if v.Pos() < guard.Pos() {
		pass.Reportf(id.Pos(),
			"probe payload %s is built before the nil guard: construct the Event inside the guard so disabled probes pay nothing",
			id.Name)
	}
}

// isParamOf reports whether v is a parameter of the innermost
// function enclosing the emission.
func isParamOf(pass *analysis.Pass, stack []ast.Node, v *types.Var) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			ft = f.Type
		case *ast.FuncDecl:
			ft = f.Type
		default:
			continue
		}
		if ft.Params != nil {
			for _, fl := range ft.Params.List {
				for _, name := range fl.Names {
					if pass.TypesInfo.Defs[name] == v {
						return true
					}
				}
			}
		}
		return false
	}
	return false
}
