// Package obs is a stub of the repo's observability layer for
// probeguard testdata: the analyzer matches the Probe interface by
// name and import-path suffix.
package obs

// Event is the flat probe payload.
type Event struct {
	Kind int
	Job  int
}

// Probe receives simulation events.
type Probe interface{ Emit(ev Event) }
