// Package pg is probeguard-analyzer testdata: both guard forms, both
// violations, and the caller-guarantees escape.
package pg

import obs "a/internal/obs"

// Ctl carries an optional probe, like slurm.Controller.
type Ctl struct{ Probe obs.Probe }

// GoodA uses the enclosing-if guard with an inline payload.
func (c *Ctl) GoodA(j int) {
	if c.Probe != nil {
		c.Probe.Emit(obs.Event{Kind: 1, Job: j})
	}
}

// GoodB uses the early-return guard; the payload is built after it.
func (c *Ctl) GoodB(j int) {
	if c.Probe == nil {
		return
	}
	ev := obs.Event{Kind: 2, Job: j}
	c.Probe.Emit(ev)
}

// GoodConj guards inside a compound condition.
func (c *Ctl) GoodConj(j int, loud bool) {
	if loud && c.Probe != nil {
		c.Probe.Emit(obs.Event{Kind: 3, Job: j})
	}
}

// GoodElse emits in the else branch of the nil comparison.
func (c *Ctl) GoodElse(j int) int {
	if c.Probe == nil {
		return 0
	} else {
		c.Probe.Emit(obs.Event{Kind: 8, Job: j})
	}
	return 1
}

// BadElseThen emits in the then branch of the nil comparison.
func (c *Ctl) BadElseThen(j int) {
	if c.Probe == nil {
		c.Probe.Emit(obs.Event{Kind: 9, Job: j}) // want `unguarded probe emission`
	}
}

// BadUnguarded emits without any nil check.
func (c *Ctl) BadUnguarded(j int) {
	c.Probe.Emit(obs.Event{Kind: 4, Job: j}) // want `unguarded probe emission`
}

// BadPayload pays for the Event even when the probe is disabled.
func (c *Ctl) BadPayload(j int) {
	ev := obs.Event{Kind: 5, Job: j}
	if c.Probe != nil {
		c.Probe.Emit(ev) // want `built before the nil guard`
	}
}

// emit trusts its caller's guard — the documented escape.
//
//simvet:guarded every caller checks the probe before calling
func emit(p obs.Probe, j int) {
	p.Emit(obs.Event{Kind: 6, Job: j})
}

// Loop guards per iteration with continue.
func (c *Ctl) Loop(js []int) {
	for _, j := range js {
		if c.Probe == nil {
			continue
		}
		c.Probe.Emit(obs.Event{Kind: 7, Job: j})
	}
}
