// Package load resolves Go packages for the simvet drivers without
// golang.org/x/tools/go/packages: it shells out to `go list -export`
// for the package graph plus compiled export data, then parses and
// type-checks only the target packages' sources, importing every
// dependency from its export file. This keeps a whole-repo run fast
// (one compile of the dependency graph, reused by every analyzer)
// and works fully offline.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listEntry is the subset of `go list -json` output load consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Match      []string
}

// Packages loads the packages matched by patterns (e.g. "./...")
// relative to dir. Test files are excluded: simvet's contracts bind
// production code only.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,GoFiles,Match",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{} // import path -> export file
	var targets []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if len(e.Match) > 0 && !e.Standard {
			entry := e
			targets = append(targets, &entry)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		p, err := check(fset, imp, t.ImportPath, t.Dir, absFiles(t.Dir, t.GoFiles))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

// exportImporter builds a types.Importer reading gc export data from
// the files `go list -export` produced.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// check parses and type-checks one package's files.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		syntax = append(syntax, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      syntax,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewInfo allocates a types.Info with every map analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
