// Package hotpath flags allocation-prone constructs in functions
// reachable from the scheduling hot path. The repo's steady-state
// contract is zero allocations per controller cycle (BENCH_sched.json
// tracks ~10 µs/cycle); the allocs tests catch regressions after the
// fact, this analyzer points at the offending expression.
//
// Entry points are seeded with //simvet:hotpath on the function
// declaration (Policy.Schedule implementations, the controller cycle).
// Reachability follows static calls within the package; //simvet:
// coldpath on a callee stops traversal into it (error paths, logging
// slow paths). Within reachable code the analyzer flags:
//
//   - fmt.Sprintf / Sprint / Sprintln / Errorf (always allocate)
//   - map and slice composite literals, and make of map/slice —
//     except lazy-init makes under a `x == nil` / `cap(x) < n` guard,
//     which grow scratch state once and then stay warm
//   - closures that capture variables (the closure and its captures
//     escape together)
//   - string concatenation (+ / += on strings)
//   - interface boxing: passing a concrete non-pointer value to an
//     interface parameter (including variadic ...interface{})
//
// Arguments to panic are exempt: panics are terminal, never
// steady-state. //simvet:alloc on a statement or function silences a
// finding that is intentional (amortised growth, cold sub-paths the
// call graph cannot see).
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hot-path allocation check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "flag alloc-prone constructs in functions reachable from //simvet:hotpath entry points " +
		"(escapes: //simvet:alloc, //simvet:coldpath)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	files := map[*ast.FuncDecl]*ast.File{}
	var seeds []*ast.FuncDecl
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			files[fd] = file
			if pass.Annotated(file, []ast.Node{fd}, "hotpath") {
				seeds = append(seeds, fd)
			}
		}
	}
	if len(seeds) == 0 {
		return nil
	}

	reachable := reach(pass, seeds, decls, files)
	for fd := range reachable {
		checkFunc(pass, files[fd], fd)
	}
	return nil
}

// reach computes the set of declared functions reachable from seeds
// via static calls within the package, stopping at //simvet:coldpath.
func reach(pass *analysis.Pass, seeds []*ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl, files map[*ast.FuncDecl]*ast.File) map[*ast.FuncDecl]bool {
	seen := map[*ast.FuncDecl]bool{}
	work := append([]*ast.FuncDecl(nil), seeds...)
	for len(work) > 0 {
		fd := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[fd] {
			continue
		}
		seen[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.Callee(call)
			if fn == nil {
				return true
			}
			callee, ok := decls[fn]
			if !ok || seen[callee] {
				return true
			}
			if pass.Annotated(files[callee], []ast.Node{callee}, "coldpath") {
				return true
			}
			work = append(work, callee)
			return true
		})
	}
	return seen
}

// checkFunc walks one reachable function body for alloc-prone
// constructs.
func checkFunc(pass *analysis.Pass, file *ast.File, fd *ast.FuncDecl) {
	analysis.WalkStack(fd, func(n ast.Node, stack []ast.Node) bool {
		if underPanic(pass, stack) {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, file, n, stack)
		case *ast.CompositeLit:
			checkComposite(pass, file, n, stack)
		case *ast.FuncLit:
			checkClosure(pass, file, n, stack)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypeOf(n)) && !pass.Annotated(file, stack, "alloc") {
				pass.Reportf(n.OpPos, "string concatenation allocates on the hot path (//simvet:alloc to allow)")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.TypeOf(n.Lhs[0])) && !pass.Annotated(file, stack, "alloc") {
				pass.Reportf(n.TokPos, "string concatenation allocates on the hot path (//simvet:alloc to allow)")
			}
		}
		return true
	})
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// underPanic reports whether the innermost enclosing call in stack is
// a panic — panic argument construction is terminal, not steady-state.
func underPanic(pass *analysis.Pass, stack []ast.Node) bool {
	for _, n := range stack {
		if call, ok := n.(*ast.CallExpr); ok && pass.IsBuiltinCall(call, "panic") {
			return true
		}
	}
	return false
}

// checkCall flags fmt formatting calls and interface boxing at call
// boundaries.
func checkCall(pass *analysis.Pass, file *ast.File, call *ast.CallExpr, stack []ast.Node) {
	fn := pass.Callee(call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Sprintf", "Sprint", "Sprintln", "Errorf":
			if !pass.Annotated(file, stack, "alloc") {
				pass.Reportf(call.Pos(), "fmt.%s allocates on the hot path (//simvet:alloc to allow, or move behind a cold-path guard)", fn.Name())
			}
			return // boxing into its ...interface{} is subsumed
		}
	}
	checkBoxing(pass, file, call, fn, stack)

	if pass.IsBuiltinCall(call, "make") && len(call.Args) > 0 {
		t := pass.TypeOf(call.Args[0])
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Map, *types.Slice:
			if lazyInit(pass, stack) || pass.Annotated(file, stack, "alloc") {
				return
			}
			pass.Reportf(call.Pos(), "make on the hot path allocates every cycle — reuse a scratch buffer, or //simvet:alloc with a reason")
		}
	}
}

// checkBoxing flags concrete non-pointer values passed to interface
// parameters — each such argument is boxed, allocating for any value
// the compiler cannot prove tiny.
func checkBoxing(pass *analysis.Pass, file *ast.File, call *ast.CallExpr, fn *types.Func, stack []ast.Node) {
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			pt = params.At(n - 1).Type().(*types.Slice).Elem()
		case i < n:
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || isBoxFree(at) {
			continue
		}
		if _, already := at.Underlying().(*types.Interface); already {
			continue
		}
		if pass.Annotated(file, stack, "alloc") {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes the value on the hot path (//simvet:alloc to allow)", at)
	}
}

// isBoxFree reports whether converting t to an interface never
// allocates: pointers, channels, maps, funcs and unsafe pointers are
// stored directly in the interface word; untyped nil has no value.
func isBoxFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UntypedNil || u.Kind() == types.UnsafePointer
	}
	return false
}

// checkComposite flags map/slice literals (each evaluation allocates).
func checkComposite(pass *analysis.Pass, file *ast.File, lit *ast.CompositeLit, stack []ast.Node) {
	t := pass.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		if pass.Annotated(file, stack, "alloc") {
			return
		}
		pass.Reportf(lit.Pos(), "map/slice literal allocates on the hot path — hoist to a scratch buffer or package state (//simvet:alloc to allow)")
	}
}

// checkClosure flags function literals that capture variables; a
// capturing closure and its captured variables escape together on
// every evaluation.
func checkClosure(pass *analysis.Pass, file *ast.File, lit *ast.FuncLit, stack []ast.Node) {
	if !captures(pass, lit) {
		return
	}
	if pass.Annotated(file, stack, "alloc") {
		return
	}
	pass.Reportf(lit.Pos(), "capturing closure allocates on the hot path (//simvet:alloc to allow)")
}

// captures reports whether lit references any variable declared
// outside its own body but inside a surrounding function.
func captures(pass *analysis.Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Package-level variables are shared state, not captures.
		if obj.Parent() == pass.Pkg.Scope() || obj.Parent() == types.Universe {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			found = true
		}
		return true
	})
	return found
}

// lazyInit reports whether the make sits under a guard of the shape
// `if x == nil` or `if cap(x) < n` / `if len(x) < n` — the scratch
// grow-once idiom, which allocates only until buffers warm up.
func lazyInit(pass *analysis.Pass, stack []ast.Node) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		if isLazyGuard(pass, ifs.Cond) {
			return true
		}
	}
	return false
}

func isLazyGuard(pass *analysis.Pass, cond ast.Expr) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "==":
			return isNil(pass, c.X) || isNil(pass, c.Y)
		case "<", "<=":
			if call, ok := ast.Unparen(c.X).(*ast.CallExpr); ok {
				return pass.IsBuiltinCall(call, "cap") || pass.IsBuiltinCall(call, "len")
			}
		case "||", "&&":
			return isLazyGuard(pass, c.X) || isLazyGuard(pass, c.Y)
		}
	}
	return false
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
