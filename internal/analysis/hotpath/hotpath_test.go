package hotpath_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	atest.Run(t, hotpath.Analyzer, "hp")
}
