// Package hp is hotpath-analyzer testdata: one annotated entry point,
// a reachable helper with every flagged construct, a coldpath-stopped
// callee, and an unreachable function that stays silent.
package hp

import "fmt"

// P is a policy stand-in with reusable buffers.
type P struct {
	buf []int
	m   map[int]int
}

// Schedule is the hot-path entry point.
//
//simvet:hotpath
func (p *P) Schedule(n int) string {
	s := fmt.Sprintf("%d", n) // want `fmt\.Sprintf allocates`
	s += "!"                  // want `string concatenation`
	t := s + "?"              // want `string concatenation`
	_ = t
	_ = []int{n} // want `map/slice literal`
	p.helper(n)
	p.cold(n)
	return s
}

func (p *P) helper(n int) {
	if cap(p.buf) < n {
		p.buf = make([]int, 0, n) // lazy grow-once: exempt
	}
	if p.m == nil {
		p.m = make(map[int]int) // lazy init: exempt
	}
	q := make([]int, n) // want `make on the hot path`
	_ = q
	f := func() int { return n } // want `capturing closure`
	_ = f()
	g := func() int { return 0 } // non-capturing: static, exempt
	_ = g()
	sink(n)      // want `boxes the value`
	sink(&p.buf) // pointers store directly in the interface word: exempt
	if n < 0 {
		panic(fmt.Sprintf("bad %d", n)) // panic is terminal: exempt
	}
	h := make([]int, n) //simvet:alloc amortised, grows once per run
	_ = h
}

// cold is error/log formatting kept off the traversal.
//
//simvet:coldpath error formatting only
func (p *P) cold(n int) {
	_ = fmt.Sprintf("cold %d", n)
}

func sink(v interface{}) {}

// NotReachable is never called from a hotpath seed; its allocations
// are not the analyzer's business.
func NotReachable() string {
	return fmt.Sprintf("fine")
}
