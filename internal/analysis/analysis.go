// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis driver surface: an Analyzer is a
// named check over one type-checked package, a Pass hands it the
// syntax, types and a Report sink, and drivers (cmd/simvet, the atest
// harness) own loading and diagnostics rendering.
//
// The repository's build is deliberately std-lib only (ROADMAP:
// "stub or gate missing deps"), so the real x/tools module cannot be a
// dependency. The subset here keeps the same field names and call
// shape as x/tools' analysis.Analyzer/analysis.Pass, which makes a
// later migration to the upstream framework a mechanical change: the
// four simvet analyzers would compile against x/tools after swapping
// the import path and the annotation helpers.
//
// On top of the x/tools subset, the package adds the //simvet:*
// annotation index that all simvet analyzers share — see Annotation
// and (*Pass).Annotated for the grammar and the attachment rules.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. Run inspects a single package
// and reports findings through the Pass; it must be stateless across
// packages (drivers run analyzers over many packages in one process).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the simvet
	// command line. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run executes the check. Diagnostics go through pass.Report; the
	// returned error aborts the whole run (driver bugs, not findings).
	Run func(*Pass) error
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report receives each finding (set by the driver).
	Report func(Diagnostic)

	annots map[*ast.File]*fileAnnots
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Annotation is one parsed //simvet:<name> [reason] comment.
type Annotation struct {
	Name   string
	Reason string
}

// fileAnnots indexes one file's //simvet:* comments by line, plus the
// set of lines occupied by comments (for the contiguous-group rule).
type fileAnnots struct {
	byLine       map[int][]Annotation
	commentLines map[int]bool
}

const annotPrefix = "//simvet:"

// parseAnnots builds the annotation index of one file.
func parseAnnots(fset *token.FileSet, f *ast.File) *fileAnnots {
	fa := &fileAnnots{byLine: map[int][]Annotation{}, commentLines: map[int]bool{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			start := fset.Position(c.Pos()).Line
			end := fset.Position(c.End()).Line
			for l := start; l <= end; l++ {
				fa.commentLines[l] = true
			}
			text := c.Text
			if !strings.HasPrefix(text, annotPrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, annotPrefix)
			name, reason, _ := strings.Cut(rest, " ")
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			fa.byLine[start] = append(fa.byLine[start], Annotation{Name: name, Reason: strings.TrimSpace(reason)})
		}
	}
	return fa
}

func (p *Pass) fileAnnotsOf(file *ast.File) *fileAnnots {
	if p.annots == nil {
		p.annots = map[*ast.File]*fileAnnots{}
	}
	fa := p.annots[file]
	if fa == nil {
		fa = parseAnnots(p.Fset, file)
		p.annots[file] = fa
	}
	return fa
}

// nodeAnnotated reports whether node n carries the named annotation:
// either a trailing comment on n's first line, or a comment in the
// contiguous comment block immediately above it (a doc comment).
func (fa *fileAnnots) nodeAnnotated(fset *token.FileSet, n ast.Node, name string) bool {
	line := fset.Position(n.Pos()).Line
	for _, a := range fa.byLine[line] {
		if a.Name == name {
			return true
		}
	}
	for l := line - 1; fa.commentLines[l]; l-- {
		for _, a := range fa.byLine[l] {
			if a.Name == name {
				return true
			}
		}
	}
	return false
}

// Annotated reports whether the //simvet:<name> annotation is attached
// to n or to any enclosing node in stack (outermost first, n last).
// An annotation is attached to a node when it appears as a trailing
// comment on the node's first line or anywhere in the contiguous
// comment block directly above it — the natural places for a doc
// comment or an inline escape. Annotating an enclosing statement (say,
// an if block) therefore silences every finding inside it; annotating
// a function declaration silences the whole function.
func (p *Pass) Annotated(file *ast.File, stack []ast.Node, name string) bool {
	fa := p.fileAnnotsOf(file)
	for _, n := range stack {
		switch n.(type) {
		case ast.Stmt, ast.Decl, *ast.File:
			if fa.nodeAnnotated(p.Fset, n, name) {
				return true
			}
		}
	}
	return false
}

// FileOf returns the *ast.File of the pass containing pos.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// InTestFile reports whether pos lies in a _test.go file. The simvet
// contracts bind production code; tests exercise probes and policies
// directly and are exempt (the drivers filter test files up front, so
// this is a second line of defense for embedding drivers that do not).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// WithStack walks every file of the pass in source order, calling fn
// for each node with the stack of its ancestors (outermost first; the
// node itself is stack[len(stack)-1]). Returning false prunes the walk
// below n. The stack slice is reused between calls — copy it to
// retain.
func (p *Pass) WithStack(fn func(n ast.Node, stack []ast.Node) bool) {
	for _, f := range p.Files {
		WalkStack(f, fn)
	}
}

// WalkStack is the single-file form of WithStack.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		stack = append(stack, n)
		if fn(n, stack) {
			for _, child := range childrenOf(n) {
				walk(child)
			}
		}
		stack = stack[:len(stack)-1]
	}
	walk(root)
}

// childrenOf lists the direct child nodes of n in source order.
func childrenOf(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true // n itself; descend one level
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.TypesInfo.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Callee resolves the called function/method object of a call
// expression, or nil (builtins, function values, type conversions).
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsBuiltinCall reports whether call invokes the named builtin.
func (p *Pass) IsBuiltinCall(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, builtin := p.TypesInfo.Uses[id].(*types.Builtin)
	return builtin
}
