// Package unit implements the `go vet -vettool` protocol for the
// simvet suite, mirroring x/tools' unitchecker: cmd/go probes the
// tool with -V=full (a version line hashed into the build cache key)
// and -flags (a JSON description of pass-through flags), then invokes
// it once per package with a JSON config file argument carrying the
// file set, the import map, and the export data of every dependency.
// The tool type-checks from export data only — no re-parsing of
// dependencies — which is what keeps whole-tree vet runs fast.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Config is the JSON schema cmd/go writes for each vetted package
// (a subset of the fields; unknown fields are ignored on decode).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements -V=full: the exact shape cmd/go's toolID
// parser accepts for an unversioned tool — "name version devel ...
// buildID=<hash of the executable>" — so the build cache invalidates
// whenever the simvet binary changes.
func PrintVersion(progname string) {
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}

// PrintFlags implements -flags: a JSON list of tool flags cmd/go may
// forward. simvet takes none beyond the protocol's own.
func PrintFlags() {
	fmt.Println("[]")
}

// Run executes the suite on the package described by the config file
// and returns the process exit code: 0 clean, 1 driver error, 2
// findings (matching unitchecker's convention). Diagnostics go to
// stderr as file:line:col: message.
func Run(cfgFile string, analyzers []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
		return 1
	}
	// cmd/go expects the facts file even though simvet exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	pkg, files, info, err := typecheck(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
		return 1
	}

	found := 0
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				found++
				fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, a.Name)
			},
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "simvet: %s: %v\n", a.Name, err)
			return 1
		}
	}
	if found > 0 {
		return 2
	}
	return 0
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return cfg, nil
}

// typecheck parses the package's own files and checks them against
// the export data of its dependencies.
func typecheck(fset *token.FileSet, cfg *Config) (*types.Package, []*ast.File, *types.Info, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := load.NewInfo()
	conf := types.Config{
		Importer:  &cfgImporter{cfg: cfg, gc: gcImporter(fset, cfg)},
		GoVersion: strings.TrimSpace(cfg.GoVersion),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return pkg, files, info, nil
}

// cfgImporter resolves imports through the config's ImportMap and
// PackageFile tables, special-casing unsafe.
type cfgImporter struct {
	cfg *Config
	gc  types.Importer
}

func (ci *cfgImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ci.gc.Import(path)
}

func gcImporter(fset *token.FileSet, cfg *Config) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}
