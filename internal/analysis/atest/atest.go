// Package atest is an analysistest-style harness for simvet
// analyzers. A test points it at import paths under the analyzer's
// testdata/src directory; atest parses and type-checks those packages
// (resolving sibling testdata stubs from the same tree and the
// standard library from source), runs the analyzer, and matches each
// diagnostic against `// want "regexp"` comments on the offending
// lines — unexpected diagnostics and unmet expectations both fail the
// test.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Run checks the analyzer against each package at
// testdata/src/<importPath> (testdata resolved relative to the test's
// working directory, i.e. the analyzer's own package directory).
func Run(t *testing.T, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	imp := &testdataImporter{
		fset:    fset,
		srcRoot: filepath.Join(testdata, "src"),
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*pkg{},
	}
	for _, path := range importPaths {
		p, err := imp.load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		checkExpectations(t, a, fset, p)
	}
}

// pkg is one loaded testdata package.
type pkg struct {
	files []*ast.File
	tpkg  *types.Package
	info  *types.Info
}

// testdataImporter type-checks packages from testdata/src, falling
// back to the source-based standard library importer.
type testdataImporter struct {
	fset    *token.FileSet
	srcRoot string
	std     types.Importer
	cache   map[string]*pkg
}

func (ti *testdataImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(ti.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		p, err := ti.load(path)
		if err != nil {
			return nil, err
		}
		return p.tpkg, nil
	}
	return ti.std.Import(path)
}

func (ti *testdataImporter) load(path string) (*pkg, error) {
	if p, ok := ti.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ti.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ti.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: ti}
	tpkg, err := conf.Check(path, ti.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking: %v", err)
	}
	p := &pkg{files: files, tpkg: tpkg, info: info}
	ti.cache[path] = p
	return p, nil
}

// expectation is one `// want "re"` entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// checkExpectations runs a over p and diffs diagnostics against the
// // want comments.
func checkExpectations(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, p *pkg) {
	t.Helper()
	var wants []*expectation
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				for _, re := range parseWants(t, pos, c.Text) {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     p.files,
		Pkg:       p.tpkg,
		TypesInfo: p.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// parseWants extracts the regexps of one comment's `// want` clause.
// The clause is a space-separated list of Go string literals (quoted
// or backquoted), as in analysistest:
//
//	x := fmt.Sprintf("%d", n) // want `Sprintf` "allocates"
func parseWants(t *testing.T, pos token.Position, text string) []*regexp.Regexp {
	t.Helper()
	idx := strings.Index(text, "// want ")
	if idx < 0 {
		return nil
	}
	rest := strings.TrimSpace(text[idx+len("// want "):])
	var out []*regexp.Regexp
	for rest != "" {
		var lit string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want literal: %s", pos, rest)
			}
			lit = rest[1 : 1+end]
			rest = rest[end+2:]
		case '"':
			var err error
			end := 1
			for end < len(rest) && (rest[end] != '"' || rest[end-1] == '\\') {
				end++
			}
			if end == len(rest) {
				t.Fatalf("%s: unterminated want literal: %s", pos, rest)
			}
			lit, err = strconv.Unquote(rest[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want literal %s: %v", pos, rest[:end+1], err)
			}
			rest = rest[end+1:]
		default:
			t.Fatalf("%s: want clause must be quoted or backquoted literals: %s", pos, rest)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
		}
		out = append(out, re)
		rest = strings.TrimSpace(rest)
	}
	return out
}
