// Package sched is determinism-analyzer testdata: its import path
// ends in internal/sched, putting it in the decision-path set.
package sched

import (
	"math/rand"
	"sort"
	"time"
)

// Job is a stand-in decision input.
type Job struct{ ID int }

// Decide trips every determinism finding.
func Decide(jobs map[int]*Job) []int {
	var order []int
	for id := range jobs { // want `map iteration`
		order = append(order, id)
	}
	if time.Now().Unix()%2 == 0 { // want `time\.Now`
		order = append(order, rand.Intn(10)) // want `global math/rand\.Intn`
	}
	return order
}

// DecideSorted shows the sanctioned collect-then-sort idiom with the
// ordered escape.
func DecideSorted(jobs map[int]*Job) []int {
	out := make([]int, 0, len(jobs))
	for id := range jobs { //simvet:ordered keys collected then sorted below
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// WallSeconds is probe-side wall time, escaped at the function level.
//
//simvet:wallclock progress meter only, never reaches decisions
func WallSeconds(start time.Time) float64 {
	return time.Now().Sub(start).Seconds()
}

// Seeded builds and uses an owned generator — constructors and
// methods on *rand.Rand are the sanctioned alternative and produce no
// finding.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(4)
}
