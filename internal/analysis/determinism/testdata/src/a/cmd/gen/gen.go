// Package gen is determinism-analyzer testdata for the scope rule:
// cmd packages are outside the decision-path set, so identical
// constructs produce no findings here.
package gen

import (
	"math/rand"
	"time"
)

// Stamp may read the wall clock freely outside decision paths.
func Stamp(tags map[string]string) int64 {
	n := time.Now().Unix()
	for range tags {
		n += rand.Int63n(3)
	}
	return n
}
