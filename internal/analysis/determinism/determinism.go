// Package determinism flags nondeterminism sources in decision-path
// packages: wall-clock reads, the global math/rand generator, and
// iteration over maps (whose order varies run to run and can leak
// into scheduling decisions or output).
//
// The contract it enforces is the repo's core guarantee: two runs of
// the same workload produce byte-identical decision logs and goldens.
// Escapes: //simvet:wallclock on a statement or function for reads
// that never reach decisions or committed output (probe timestamps,
// progress meters), //simvet:ordered for map ranges that sort their
// results before use or are provably order-insensitive (pure
// accumulation into commutative aggregates).
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag time.Now, global math/rand, and map iteration in decision-path packages " +
		"(escapes: //simvet:wallclock, //simvet:ordered)",
	Run: run,
}

// decisionPaths are the import-path suffixes of packages whose code
// can reach scheduling decisions or committed output. Packages outside
// this set (cmd wiring, analysis tooling) are exempt.
var decisionPaths = []string{
	"internal/sched",
	"internal/slurm",
	"internal/sim",
	"internal/sweep",
	"internal/metrics",
	"internal/workload",
	"internal/obs",
}

// InScope reports whether the import path belongs to a decision-path
// package.
func InScope(importPath string) bool {
	for _, suffix := range decisionPaths {
		if importPath == suffix || strings.HasSuffix(importPath, "/"+suffix) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !InScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		f := file
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, f, n, stack)
			case *ast.RangeStmt:
				checkRange(pass, f, n, stack)
			}
			return true
		})
	}
	return nil
}

// checkCall flags wall-clock reads and global math/rand use.
func checkCall(pass *analysis.Pass, file *ast.File, call *ast.CallExpr, stack []ast.Node) {
	fn := pass.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Package-level functions only: methods on a seeded *rand.Rand or
	// a time.Timer are exactly the sanctioned alternatives.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" && !pass.Annotated(file, stack, "wallclock") {
			pass.Reportf(call.Pos(),
				"time.Now in decision-path package %s: virtual time must come from the sim engine (//simvet:wallclock to allow)",
				pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		// Constructors (rand.New, rand.NewSource, ...) build the owned,
		// seeded generator the contract asks for; only the package-level
		// draw/seed functions touch the shared global state.
		if strings.HasPrefix(fn.Name(), "New") {
			return
		}
		pass.Reportf(call.Pos(),
			"global math/rand.%s in decision-path package %s: use a seeded *rand.Rand so replays are reproducible",
			fn.Name(), pass.Pkg.Name())
	}
}

// checkRange flags iteration over map-typed values.
func checkRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt, stack []ast.Node) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.Annotated(file, stack, "ordered") {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration in decision-path package %s: order varies run to run — sort keys first, or mark //simvet:ordered with a reason",
		pass.Pkg.Name())
}
