package determinism_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	atest.Run(t, determinism.Analyzer, "a/internal/sched", "a/cmd/gen")
}

func TestInScope(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/sched":                true,
		"repro/internal/slurm":                true,
		"repro/internal/sweep":                true,
		"internal/obs":                        true,
		"repro/cmd/simrun":                    false,
		"repro/internal/analysis/determinism": false,
	} {
		if got := determinism.InScope(path); got != want {
			t.Errorf("InScope(%q) = %v, want %v", path, got, want)
		}
	}
}
