package scratchcontract_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/scratchcontract"
)

func TestScratchContract(t *testing.T) {
	atest.Run(t, scratchcontract.Analyzer, "sc")
}
