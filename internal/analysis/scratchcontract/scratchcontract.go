// Package scratchcontract enforces the ownership rules around the
// scheduler's scratch struct. Policies carry per-instance reusable
// buffers (the `scratch` field) so the hot path allocates nothing in
// steady state; that only holds if exactly one goroutine-free owner
// mutates each scratch. Three rules follow:
//
//  1. every method on a scratch-carrying type uses a pointer
//     receiver — a value receiver copies the buffers and warms the
//     copy instead of the instance;
//  2. scratch-carrying values are never passed, returned, or copied
//     by value — only pointers travel;
//  3. constructors (New, NewFor, and friends) return a fresh
//     instance per call, never a stored one — sharing one instance
//     across partitions aliases the buffers mid-cycle;
//  4. ClonePolicy methods mint cold clones — they never return the
//     receiver and never read the receiver's scratch field, or the
//     forked lineage would share (and race on) the parent's buffers.
//
// The analyzer triggers only in packages that define a struct type
// named scratch; everywhere else it is a no-op.
package scratchcontract

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the scratch ownership check.
var Analyzer = &analysis.Analyzer{
	Name: "scratchcontract",
	Doc: "scratch-carrying policy types must use pointer receivers, never be copied by value, " +
		"constructors must return fresh instances, and ClonePolicy must not alias receiver scratch",
	Run: run,
}

func run(pass *analysis.Pass) error {
	scratch := findScratch(pass)
	if scratch == nil {
		return nil
	}
	carrying := carryingTypes(pass, scratch)
	if len(carrying) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		f := file
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkReceiver(pass, carrying, n)
				if isConstructorName(n.Name.Name) {
					checkConstructor(pass, carrying, n)
				}
				checkClonePolicy(pass, carrying, scratch, n)
			case *ast.FuncType:
				checkSignature(pass, f, carrying, n)
			case *ast.AssignStmt:
				checkCopies(pass, carrying, n)
			}
			return true
		})
	}
	return nil
}

// findScratch locates the package's struct type named scratch.
func findScratch(pass *analysis.Pass) *types.Named {
	obj := pass.Pkg.Scope().Lookup("scratch")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// carryingTypes returns the named struct types with a field of type
// scratch (directly or embedded by value).
func carryingTypes(pass *analysis.Pass, scratch *types.Named) map[*types.Named]bool {
	out := map[*types.Named]bool{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || named == scratch {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if types.Identical(st.Field(i).Type(), scratch) {
				out[named] = true
				break
			}
		}
	}
	return out
}

// isCarrying reports whether t is (a named alias of) a scratch-
// carrying struct — the value type itself, not a pointer to it.
func isCarrying(carrying map[*types.Named]bool, t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	return ok && carrying[named]
}

// checkReceiver enforces pointer receivers on carrying types.
func checkReceiver(pass *analysis.Pass, carrying map[*types.Named]bool, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return
	}
	rt := pass.TypeOf(fd.Recv.List[0].Type)
	if rt == nil {
		return
	}
	if isCarrying(carrying, rt) {
		pass.Reportf(fd.Recv.Pos(),
			"method %s has a value receiver on scratch-carrying type %s: the receiver copy warms its own buffers — use a pointer receiver",
			fd.Name.Name, typeName(rt))
	}
}

// checkSignature flags carrying types passed or returned by value in
// any function signature (declarations and literals alike).
func checkSignature(pass *analysis.Pass, file *ast.File, carrying map[*types.Named]bool, ft *ast.FuncType) {
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if t != nil && isCarrying(carrying, t) {
				pass.Reportf(field.Pos(),
					"scratch-carrying type %s %s by value: pass *%s so buffers are not copied",
					typeName(t), what, typeName(t))
			}
		}
	}
	checkFieldList(ft.Params, "passed")
	if ft.Results != nil {
		checkFieldList(ft.Results, "returned")
	}
}

// checkCopies flags value copies of carrying types: dereferencing a
// policy pointer into a local, or assigning one policy value to
// another.
func checkCopies(pass *analysis.Pass, carrying map[*types.Named]bool, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		// Discarding to _ copies nothing.
		if len(as.Lhs) == len(as.Rhs) {
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				continue
			}
		}
		t := pass.TypeOf(rhs)
		if t == nil || !isCarrying(carrying, t) {
			continue
		}
		switch ast.Unparen(rhs).(type) {
		case *ast.CompositeLit:
			// Construction, not a copy. (Constructor rules police how
			// the fresh value is then shared.)
		case *ast.StarExpr, *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
			pass.Reportf(rhs.Pos(),
				"copying scratch-carrying type %s by value: the copy aliases no buffers and warms its own — use a pointer",
				typeName(t))
		}
	}
}

// isConstructorName matches the constructor naming convention the
// contract binds: New, NewFor, NewFCFS, ...
func isConstructorName(name string) bool {
	return name == "New" || strings.HasPrefix(name, "New")
}

// checkConstructor enforces that New* functions returning a carrying
// type (directly, by pointer, or behind an interface) never return a
// stored instance: returning a field, a package-level variable, or a
// parameter shares one scratch across callers.
func checkConstructor(pass *analysis.Pass, carrying map[*types.Named]bool, fd *ast.FuncDecl) {
	if fd.Type.Results == nil || fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			t := pass.TypeOf(res)
			if t == nil {
				continue
			}
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if !isCarrying(carrying, t) {
				continue
			}
			switch e := ast.Unparen(res).(type) {
			case *ast.SelectorExpr:
				pass.Reportf(res.Pos(),
					"constructor %s returns a stored %s: each call must return a fresh instance, or partitions share scratch buffers",
					fd.Name.Name, typeName(t))
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[e]
				if obj == nil {
					continue
				}
				v, ok := obj.(*types.Var)
				if !ok {
					continue
				}
				if v.Parent() == pass.Pkg.Scope() {
					pass.Reportf(res.Pos(),
						"constructor %s returns package-level %s: each call must return a fresh instance, or partitions share scratch buffers",
						fd.Name.Name, e.Name)
				} else if isParam(pass, fd, v) {
					pass.Reportf(res.Pos(),
						"constructor %s returns its parameter %s: the caller already owns that instance — allocate a fresh one",
						fd.Name.Name, e.Name)
				}
			}
		}
		return true
	})
}

// checkClonePolicy enforces the fork contract on scratch carriers: a
// ClonePolicy method must mint a cold clone. Returning the receiver
// (or a dereferenced copy of it) shares one scratch between the two
// lineages; reading the receiver's scratch field copies slice headers
// whose backing arrays the parent keeps mutating. Warming a freshly
// allocated clone's own scratch is fine.
func checkClonePolicy(pass *analysis.Pass, carrying map[*types.Named]bool, scratch *types.Named, fd *ast.FuncDecl) {
	if fd.Name.Name != "ClonePolicy" || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
		return
	}
	rt := pass.TypeOf(fd.Recv.List[0].Type)
	if rt == nil {
		return
	}
	if ptr, ok := rt.Underlying().(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	if !isCarrying(carrying, rt) {
		return
	}
	var recv *types.Var
	if names := fd.Recv.List[0].Names; len(names) == 1 {
		recv, _ = pass.TypesInfo.Defs[names[0]].(*types.Var)
	}
	isRecv := func(e ast.Expr) bool {
		if recv == nil {
			return false
		}
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.StarExpr:
				e = x.X
			case *ast.Ident:
				return pass.TypesInfo.Uses[x] == recv
			default:
				return false
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				e := ast.Unparen(res)
				if star, ok := e.(*ast.StarExpr); ok {
					e = star.X
				}
				if isRecv(e) {
					pass.Reportf(res.Pos(),
						"ClonePolicy on %s returns its receiver: both lineages would share one scratch — allocate a fresh instance",
						typeName(rt))
				}
			}
		case *ast.SelectorExpr:
			t := pass.TypeOf(n)
			if t != nil && types.Identical(types.Unalias(t), scratch) && isRecv(n.X) {
				pass.Reportf(n.Pos(),
					"ClonePolicy on %s reads the receiver's scratch: the clone would alias the parent's buffers — start the clone cold",
					typeName(rt))
			}
		}
		return true
	})
}

// isParam reports whether v is one of fd's parameters (including the
// receiver).
func isParam(pass *analysis.Pass, fd *ast.FuncDecl, v *types.Var) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if pass.TypesInfo.Defs[name] == v {
					return true
				}
			}
		}
		return false
	}
	return check(fd.Type.Params) || check(fd.Recv)
}

func typeName(t types.Type) string {
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
