// Package sc is scratchcontract-analyzer testdata: a scratch struct,
// compliant and violating carriers, and constructors that leak stored
// instances.
package sc

// scratch is the reusable-buffer struct the contract binds to.
type scratch struct {
	buf []int
}

// Good follows the contract: pointer receivers only.
type Good struct{ sc scratch }

// Schedule is fine on a pointer receiver.
func (g *Good) Schedule() { g.sc.buf = g.sc.buf[:0] }

// Bad demonstrates the value-receiver violation.
type Bad struct{ sc scratch }

func (b Bad) Schedule() { b.sc.buf = b.sc.buf[:0] } // want `value receiver`

// ByValue passes a carrier by value.
func ByValue(b Bad) {} // want `passed by value`

// Produce returns a carrier by value.
func Produce() Bad { // want `returned by value`
	return Bad{} // construction itself is fine
}

var shared = &Good{}

// New is a constructor; the "shared" arm returns a stored instance.
func New(name string) *Good {
	if name == "shared" {
		return shared // want `package-level`
	}
	return &Good{} // fresh: fine
}

// Registry caches a policy and leaks it from a constructor method.
type Registry struct{ g *Good }

// NewFor must mint a fresh policy per partition.
func (r *Registry) NewFor() *Good {
	return r.g // want `stored`
}

// NewFrom hands back the caller's own instance.
func NewFrom(g *Good) *Good {
	return g // want `parameter`
}

// Clone copies the buffers by dereference.
func Clone(p *Good) {
	v := *p // want `copying`
	_ = v
}

// NewLocal builds locally then returns the pointer — fine.
func NewLocal() *Good {
	g := &Good{}
	g.sc.buf = make([]int, 0, 8)
	return g
}

// Policy is the cloneable-policy interface of the fork contract.
type Policy interface{ ClonePolicy() Policy }

// CloneGood mints a cold clone: configuration copied, scratch fresh.
type CloneGood struct {
	depth int
	sc    scratch
}

// ClonePolicy is compliant: warming the clone's OWN scratch is fine.
func (c *CloneGood) ClonePolicy() Policy {
	f := &CloneGood{depth: c.depth}
	f.sc.buf = make([]int, 0, 8)
	return f
}

// CloneSelf hands the receiver to the forked lineage.
type CloneSelf struct{ sc scratch }

func (c *CloneSelf) ClonePolicy() Policy {
	return c // want `returns its receiver`
}

// CloneAlias copies the receiver's scratch (slice headers) into the
// clone.
type CloneAlias struct{ sc scratch }

func (c *CloneAlias) ClonePolicy() Policy {
	return &CloneAlias{sc: c.sc} // want `reads the receiver's scratch`
}

// CloneDeref returns a dereferenced receiver copy.
type CloneDeref struct{ sc scratch }

func (c *CloneDeref) ClonePolicy() *CloneDeref {
	d := *c // want `copying`
	return &d
}
