package obs

import (
	"bufio"
	"io"
	"strconv"
)

// SchedTrace renders the decision stream as JSONL: one JSON object
// per non-empty policy pass — the cycle's virtual time, partition,
// queue depth, free CPUs and the actions the pass produced, each with
// its outcome reason — plus one object per spillover verdict. Lines
// carry no wall-clock values, so the trace of a deterministic replay
// is itself byte-for-byte reproducible.
//
// A pass with an empty queue and no actions writes nothing: on large
// traces most passes are quiet, and skipping them keeps file size
// proportional to scheduling activity rather than cycle count.
type SchedTrace struct {
	w   *bufio.Writer
	err error

	// Current pass group: opened by KindPass, closed (written) by the
	// next KindPass, a spill action, or the cycle boundary.
	open  bool
	pass  Event
	acts  []Event
	lineB []byte // reusable line buffer
}

// NewSchedTrace writes JSONL to w. Call Flush (and check its error)
// when the run completes.
func NewSchedTrace(w io.Writer) *SchedTrace {
	return &SchedTrace{w: bufio.NewWriter(w)}
}

// Emit implements Probe.
func (t *SchedTrace) Emit(ev Event) {
	switch ev.Kind {
	case KindPass:
		t.flushGroup()
		t.open = true
		t.pass = ev
		t.acts = t.acts[:0]
	case KindAction:
		if ev.Act == ActSpill {
			// Spillover verdicts happen after every partition pass; they
			// get their own line against the host partition.
			t.flushGroup()
			t.writeSpill(ev)
			return
		}
		if t.open {
			t.acts = append(t.acts, ev)
		}
	case KindCycleStart, KindCycleEnd:
		t.flushGroup()
	case KindNodeDown, KindNodeUp, KindRequeue:
		// Fault-injection events get their own line, like spill
		// verdicts: they happen outside any policy pass.
		t.flushGroup()
		t.writeFault(ev)
	}
}

// flushGroup writes the pending pass line, if any.
func (t *SchedTrace) flushGroup() {
	if !t.open {
		return
	}
	t.open = false
	if t.pass.Queue == 0 && len(t.acts) == 0 {
		return // quiet pass
	}
	b := t.lineB[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, t.pass.Time, 'g', -1, 64)
	b = append(b, `,"partition":`...)
	b = strconv.AppendQuote(b, t.pass.Partition)
	b = append(b, `,"queue":`...)
	b = strconv.AppendInt(b, int64(t.pass.Queue), 10)
	b = append(b, `,"running":`...)
	b = strconv.AppendInt(b, int64(t.pass.Running), 10)
	b = append(b, `,"free":`...)
	b = strconv.AppendInt(b, int64(t.pass.Free), 10)
	b = append(b, `,"cores":`...)
	b = strconv.AppendInt(b, int64(t.pass.Cores), 10)
	if len(t.acts) > 0 {
		b = append(b, `,"actions":[`...)
		for i, a := range t.acts {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendAction(b, a)
		}
		b = append(b, ']')
	}
	b = append(b, '}', '\n')
	t.lineB = b
	t.write(b)
}

// writeSpill writes one spillover-verdict line.
func (t *SchedTrace) writeSpill(ev Event) {
	b := t.lineB[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, ev.Time, 'g', -1, 64)
	b = append(b, `,"partition":`...)
	b = strconv.AppendQuote(b, ev.Partition)
	b = append(b, `,"pass":"spillover","actions":[`...)
	b = appendAction(b, ev)
	b = append(b, ']', '}', '\n')
	t.lineB = b
	t.write(b)
}

// writeFault writes one fault-injection line: a node state change or
// a job requeue.
func (t *SchedTrace) writeFault(ev Event) {
	b := t.lineB[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, ev.Time, 'g', -1, 64)
	b = append(b, `,"partition":`...)
	b = strconv.AppendQuote(b, ev.Partition)
	b = append(b, `,"pass":"nodefault","event":`...)
	b = strconv.AppendQuote(b, ev.Kind.String())
	b = append(b, `,"node":`...)
	b = strconv.AppendQuote(b, ev.Placement)
	if ev.Kind == KindRequeue {
		b = append(b, `,"job":`...)
		b = strconv.AppendQuote(b, ev.Job)
		b = append(b, `,"attempt":`...)
		b = strconv.AppendInt(b, int64(ev.Target), 10)
	} else {
		b = append(b, `,"state":`...)
		b = strconv.AppendQuote(b, ev.Outcome)
	}
	b = append(b, '}', '\n')
	t.lineB = b
	t.write(b)
}

// appendAction renders one action object.
func appendAction(b []byte, a Event) []byte {
	b = append(b, `{"job":`...)
	b = strconv.AppendQuote(b, a.Job)
	b = append(b, `,"act":`...)
	b = strconv.AppendQuote(b, a.Act.String())
	b = append(b, `,"reason":`...)
	b = strconv.AppendQuote(b, a.Reason.String())
	if a.Target > 0 {
		b = append(b, `,"target":`...)
		b = strconv.AppendInt(b, int64(a.Target), 10)
	}
	if a.Nodes > 0 {
		b = append(b, `,"nodes":`...)
		b = strconv.AppendInt(b, int64(a.Nodes), 10)
	}
	if a.Origin != "" {
		b = append(b, `,"origin":`...)
		b = strconv.AppendQuote(b, a.Origin)
	}
	if a.Reason == ReasonBlockedByReservation {
		b = append(b, `,"shadow":`...)
		b = strconv.AppendFloat(b, a.Shadow, 'g', -1, 64)
	}
	return append(b, '}')
}

func (t *SchedTrace) write(b []byte) {
	if t.err != nil {
		return
	}
	_, t.err = t.w.Write(b)
}

// Flush writes the pending group and flushes the buffer, returning
// the first write error.
func (t *SchedTrace) Flush() error {
	t.flushGroup()
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}
