package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestKindActReasonStrings(t *testing.T) {
	if KindPass.String() != "pass" || KindCell.String() != "cell" {
		t.Fatalf("kind names wrong: %s %s", KindPass, KindCell)
	}
	if ActSpill.String() != "spill" || ActNone.String() != "none" {
		t.Fatalf("act names wrong: %s %s", ActSpill, ActNone)
	}
	if ReasonBlockedByReservation.String() != "blocked-by-reservation" {
		t.Fatalf("reason name wrong: %s", ReasonBlockedByReservation)
	}
	if Kind(99).String() == "" || Act(99).String() == "" || Reason(99).String() == "" {
		t.Fatal("out-of-range enums must still render")
	}
}

// TestKindNamesSync: every declared Kind — including ones added after
// the table was first written — has a distinct non-empty name and a
// ByKind counting slot. Catches the classic "new enum value, stale
// name table" drift.
func TestKindNamesSync(t *testing.T) {
	var c Count
	seen := map[string]Kind{}
	for k := Kind(1); int(k) < len(kindNames); k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "kind(") {
			t.Errorf("Kind(%d) has no name", int(k))
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("Kind(%d) and Kind(%d) share the name %q", int(k), int(prev), name)
		}
		seen[name] = k
		c.Emit(Event{Kind: k})
		if c.Of(k) != 1 {
			t.Errorf("Kind(%d) %q has no ByKind slot", int(k), name)
		}
	}
	if int(c.Total) != len(kindNames)-1 {
		t.Errorf("Total = %d after %d emits", c.Total, len(kindNames)-1)
	}
	for kind, want := range map[Kind]string{
		KindNodeDown: "node-down", KindNodeUp: "node-up", KindRequeue: "requeue",
	} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(kind), kind.String(), want)
		}
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of no probes must be nil")
	}
	var c Count
	if p := Multi(nil, &c, nil); p != Probe(&c) {
		t.Fatal("Multi of one live probe must return it directly")
	}
	var c2 Count
	m := Multi(&c, &c2)
	m.Emit(Event{Kind: KindPass})
	m.Emit(Event{Kind: KindPass})
	m.Emit(Event{Kind: KindAction})
	if c.Of(KindPass) != 2 || c2.Of(KindPass) != 2 || c.Total != 3 {
		t.Fatalf("fan-out miscounted: %d %d %d", c.Of(KindPass), c2.Of(KindPass), c.Total)
	}
	var got Kind
	Func(func(ev Event) { got = ev.Kind }).Emit(Event{Kind: KindCell})
	if got != KindCell {
		t.Fatalf("Func adapter delivered %v", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.String() == "" {
		t.Fatal("empty histogram accessors must be safe")
	}
	for _, v := range []int64{1, 2, 3, 100, 1000, -5, 0} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
	if h.Sum() != 1106 { // negatives clamp to 0
		t.Fatalf("sum = %d", h.Sum())
	}
	// Quantiles report a log-bucket upper edge, clamped by max: the
	// true median is 3, and the bucket resolution guarantees the
	// reported bound is within 2x of a neighbouring observation.
	if q := h.Quantile(0.5); q < 1 || q > 7 {
		t.Fatalf("p50 = %d, want a bucket edge near the median 3", q)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 = %d, want clamped to max 1000", q)
	}
	// The overflow guard: huge observations stay positive.
	var big Histogram
	big.Observe(1 << 62)
	if q := big.Quantile(0.99); q != 1<<62 {
		t.Fatalf("overflow bucket quantile = %d", q)
	}
}

func TestHistogramZeroAlloc(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Observe allocates %.1f/op", n)
	}
	var ch CycleHist
	ev := Event{Kind: KindCycleEnd, WallNanos: 4096}
	if n := testing.AllocsPerRun(1000, func() { ch.Emit(ev) }); n != 0 {
		t.Fatalf("CycleHist.Emit allocates %.1f/op", n)
	}
}

func TestCycleHistReport(t *testing.T) {
	var ch CycleHist
	ch.Emit(Event{Kind: KindCycleEnd, WallNanos: 1000})
	ch.Emit(Event{Kind: KindPass, WallNanos: 300})
	var buf bytes.Buffer
	ch.Report(&buf)
	out := buf.String()
	if !strings.Contains(out, "sched cycle wall") || !strings.Contains(out, "Schedule() wall") {
		t.Fatalf("report missing sections:\n%s", out)
	}
	if ch.Cycle.Count() != 1 || ch.Sched.Count() != 1 {
		t.Fatalf("counts: cycle=%d sched=%d", ch.Cycle.Count(), ch.Sched.Count())
	}
}

// traceScript is a small synthetic decision stream: a busy pass with
// two actions, a quiet pass, and a spillover verdict.
func traceScript(p Probe) {
	p.Emit(Event{Kind: KindCycleStart, Time: 10})
	p.Emit(Event{Kind: KindPass, Time: 10, Partition: "batch", Queue: 2, Running: 1, Free: 16, Cores: 64})
	p.Emit(Event{Kind: KindAction, Act: ActStart, Reason: ReasonStarted, Time: 10,
		Partition: "batch", Job: "j00001", Seq: 1, Target: 4, Nodes: 2})
	p.Emit(Event{Kind: KindAction, Act: ActStart, Reason: ReasonSkipped, Time: 10,
		Partition: "batch", Job: "j00002", Seq: 2})
	p.Emit(Event{Kind: KindPass, Time: 10, Partition: "fat", Queue: 0, Running: 0, Free: 32, Cores: 32})
	p.Emit(Event{Kind: KindAction, Act: ActSpill, Reason: ReasonBlockedByReservation, Time: 10,
		Partition: "fat", Origin: "batch", Job: "j00003", Seq: 3, Shadow: 99.5})
	p.Emit(Event{Kind: KindCycleEnd, Time: 10})
}

func TestSchedTraceJSONAndDeterminism(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		tr := NewSchedTrace(&buf)
		traceScript(tr)
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out := render()
	if out != render() {
		t.Fatal("trace output not deterministic across identical runs")
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want busy pass + spill (quiet pass dropped):\n%s", len(lines), out)
	}
	// Every line must be a valid JSON object.
	type action struct {
		Job, Act, Reason, Origin string
		Target, Nodes            int
		Shadow                   float64
	}
	var first struct {
		T                           float64
		Partition, Pass             string
		Queue, Running, Free, Cores int
		Actions                     []action
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not JSON: %v\n%s", err, lines[0])
	}
	if first.Partition != "batch" || first.Queue != 2 || len(first.Actions) != 2 {
		t.Fatalf("pass line wrong: %+v", first)
	}
	if first.Actions[0].Reason != "started" || first.Actions[1].Reason != "skipped" {
		t.Fatalf("action reasons wrong: %+v", first.Actions)
	}
	var spill struct {
		Pass    string
		Actions []action
	}
	if err := json.Unmarshal([]byte(lines[1]), &spill); err != nil {
		t.Fatalf("line 2 is not JSON: %v\n%s", err, lines[1])
	}
	if spill.Pass != "spillover" || len(spill.Actions) != 1 ||
		spill.Actions[0].Reason != "blocked-by-reservation" || spill.Actions[0].Shadow != 99.5 {
		t.Fatalf("spill line wrong: %+v", spill)
	}
}

func TestExplainStory(t *testing.T) {
	e := NewExplain("j2")
	if !strings.Contains(e.Story(), "never submitted") {
		t.Fatalf("unknown job story: %s", e.Story())
	}
	// j1 ahead of j2 in the queue; j2 waits one pass, then starts.
	e.Emit(Event{Kind: KindSubmit, Time: 0, Job: "j1", Seq: 1, Partition: "batch", Nodes: 1, CPUs: 4})
	e.Emit(Event{Kind: KindSubmit, Time: 1, Job: "j2", Seq: 2, Partition: "batch", Nodes: 2, CPUs: 8})
	e.Emit(Event{Kind: KindPass, Time: 1, Partition: "batch", Queue: 2, Free: 0, Cores: 64})
	e.Emit(Event{Kind: KindJobStart, Time: 5, Job: "j1", Seq: 1})
	e.Emit(Event{Kind: KindPass, Time: 5, Partition: "batch", Queue: 1, Free: 32, Cores: 64})
	e.Emit(Event{Kind: KindJobStart, Time: 6, Job: "j2", Seq: 2, Partition: "batch", CPUs: 8, Placement: "node0,node1"})
	e.Emit(Event{Kind: KindJobEnd, Time: 16, Job: "j2", Seq: 2, Outcome: "completed"})
	story := e.Story()
	for _, want := range []string{
		"submitted to partition \"batch\"",
		"position 2 of 2",
		"position 1 of 1",
		"started on node0,node1",
		"after waiting 5.0s",
		"completed after running 10.0s",
		"response time 15.0s",
	} {
		if !strings.Contains(story, want) {
			t.Errorf("story missing %q:\n%s", want, story)
		}
	}
	if strings.Contains(story, "still") {
		t.Errorf("finished job must have no pending footer:\n%s", story)
	}
}

func TestExplainStillQueuedFooter(t *testing.T) {
	e := NewExplain("j9")
	e.Emit(Event{Kind: KindSubmit, Time: 0, Job: "j9", Seq: 9, Partition: "batch", Nodes: 1, CPUs: 1})
	e.Emit(Event{Kind: KindPass, Time: 3, Partition: "batch", Queue: 1, Free: 0, Cores: 64})
	if s := e.Story(); !strings.Contains(s, "still queued") {
		t.Fatalf("want still-queued footer:\n%s", s)
	}
}

func TestSamplerCSVAndJSON(t *testing.T) {
	run := func(jsonFmt bool) string {
		var buf bytes.Buffer
		s := NewSampler(10, &buf, jsonFmt)
		s.Emit(Event{Kind: KindPass, Time: 1, Partition: "batch", Queue: 3, Running: 2, Free: 16, Cores: 64})
		s.Emit(Event{Kind: KindAction, Act: ActSpill, Reason: ReasonSpilled, Time: 2, Partition: "fat", Origin: "batch"})
		s.Emit(Event{Kind: KindPass, Time: 12, Partition: "batch", Queue: 1, Running: 4, Free: 0, Cores: 64})
		s.Emit(Event{Kind: KindEngine, Time: 25}) // heartbeat crosses t=20
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	csv := run(false)
	lines := strings.Split(strings.TrimSuffix(csv, "\n"), "\n")
	if lines[0] != "t,partition,util,queue_depth,running,spilled_in,spilled_out" {
		t.Fatalf("csv header wrong: %q", lines[0])
	}
	// t=10 samples the t=1 pass state (util 48/64), t=20 the t=12 state,
	// plus one final boundary row from Flush. The fat partition only
	// appears after its spill at t=2, so t=10 has batch alone... the
	// spill registered fat before the t=10 boundary, so rows come in
	// first-seen order: batch then fat.
	if want := "10,batch,0.75,3,2,0,1"; lines[1] != want {
		t.Fatalf("row 1 = %q, want %q", lines[1], want)
	}
	found := false
	for _, l := range lines {
		if l == "20,batch,1,1,4,0,1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("t=20 batch row missing:\n%s", csv)
	}
	jsonOut := run(true)
	for _, l := range strings.Split(strings.TrimSuffix(jsonOut, "\n"), "\n") {
		var row struct {
			T          float64
			Partition  string
			Util       float64
			QueueDepth int `json:"queue_depth"`
			SpilledIn  int `json:"spilled_in"`
			SpilledOut int `json:"spilled_out"`
		}
		if err := json.Unmarshal([]byte(l), &row); err != nil {
			t.Fatalf("bad JSONL row %q: %v", l, err)
		}
		if row.Partition == "fat" && row.SpilledIn != 1 {
			t.Fatalf("fat spilled_in = %d, want 1: %s", row.SpilledIn, l)
		}
	}
	if run(false) != csv {
		t.Fatal("sampler output not deterministic")
	}
}

func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	tick := time.Unix(0, 0)
	p.now = func() time.Time { tick = tick.Add(2 * time.Second); return tick }
	p.Emit(Event{Kind: KindPass}) // ignored
	p.Emit(Event{Kind: KindCell, Cell: 1, Cells: 4})
	p.Emit(Event{Kind: KindCell, Cell: 4, Cells: 4})
	out := buf.String()
	if !strings.Contains(out, "1/4 cells") || !strings.Contains(out, "4/4 cells") {
		t.Fatalf("progress lines missing:\n%q", out)
	}
	if !strings.Contains(out, "ETA") || !strings.HasSuffix(out, "\n") {
		t.Fatalf("want ETA and a final newline:\n%q", out)
	}
}
