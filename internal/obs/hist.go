package obs

import (
	"fmt"
	"io"
	"math/bits"
	"time"
)

// Histogram is a zero-allocation log-bucketed latency histogram:
// bucket b holds observations v with bits.Len64(v) == b, i.e. values
// in [2^(b-1), 2^b). Observe is allocation-free and O(1), so the hot
// path can record every scheduling cycle's wall time; quantiles are
// resolved to a bucket upper bound, which is exact enough for
// order-of-magnitude latency reporting (within 2x).
type Histogram struct {
	buckets [65]uint64 // index = bits.Len64(value), 0..64
	count   uint64
	sum     uint64
	max     int64
}

// Observe records one value (nanoseconds by convention). Negative
// values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))]++
	h.count++
	h.sum += uint64(v)
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound of the q-quantile (0 <= q <= 1):
// the upper edge of the bucket where the cumulative count crosses
// q*count, clamped by the true maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b, n := range h.buckets {
		cum += n
		if cum >= rank {
			if b == 0 || b >= 63 {
				// Bucket 0 holds only zeros; buckets ≥ 63 would
				// overflow int64 — clamp both to the exact extreme.
				if b == 0 {
					return 0
				}
				return h.max
			}
			edge := int64(1)<<uint(b) - 1 // upper edge of bucket b
			if edge > h.max {
				edge = h.max
			}
			return edge
		}
	}
	return h.max
}

// String renders a one-line summary with durations.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50≤%v p90≤%v p99≤%v max=%v",
		h.count,
		time.Duration(h.Mean()).Round(time.Nanosecond),
		time.Duration(h.Quantile(0.50)),
		time.Duration(h.Quantile(0.90)),
		time.Duration(h.Quantile(0.99)),
		time.Duration(h.max))
}

// CycleHist aggregates the wall-time histograms of a replay: one per
// scheduling cycle (KindCycleEnd) and one per Schedule() call
// (KindPass). Emit is allocation-free, so it can ride along any
// probed run at negligible cost.
type CycleHist struct {
	Cycle Histogram // wall time per scheduling cycle
	Sched Histogram // wall time per policy Schedule() call
}

// Emit implements Probe.
func (h *CycleHist) Emit(ev Event) {
	switch ev.Kind {
	case KindCycleEnd:
		h.Cycle.Observe(ev.WallNanos)
	case KindPass:
		h.Sched.Observe(ev.WallNanos)
	}
}

// Report writes the two histogram summaries.
func (h *CycleHist) Report(w io.Writer) {
	fmt.Fprintf(w, "sched cycle wall:  %v\n", &h.Cycle)
	fmt.Fprintf(w, "Schedule() wall:   %v\n", &h.Sched)
}
