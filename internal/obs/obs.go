// Package obs is the scheduler observability bus: a flat event type
// emitted from a handful of probe points (controller scheduling
// cycles, policy passes, action outcomes, spillover verdicts, job
// lifecycle transitions, engine progress, sweep cell completion) and
// a set of consumers that reconstruct user-facing views from the
// stream — a JSONL decision trace, a per-job lifecycle explainer, a
// virtual-time sampler and zero-alloc latency histograms.
//
// Instrumented code holds a Probe interface value and emits only when
// it is non-nil, so the disabled path pays a single nil check per
// probe point and allocates nothing. Events are passed by value; a
// consumer must copy what it wants to retain.
package obs

// Kind discriminates Event payloads.
type Kind uint8

// Event kinds, in rough lifecycle order.
const (
	// KindSubmit: a job entered the controller queue. Job, Seq,
	// Partition, Priority, Nodes, CPUs.
	KindSubmit Kind = iota + 1
	// KindCycleStart opens one scheduling cycle (all partition passes
	// coalesced at one timestamp). Queue/Running are controller-wide;
	// Processed is the engine's event count.
	KindCycleStart
	// KindPass: one policy pass over one partition, emitted after
	// Schedule returned and before its actions execute. Queue, Running,
	// Free and Cores describe the partition snapshot the policy saw;
	// WallNanos is the Schedule call's wall time.
	KindPass
	// KindAction: one executed (or rejected) scheduler action. Act
	// says what was attempted, Reason how it ended.
	KindAction
	// KindCycleEnd closes the cycle; WallNanos is the whole cycle's
	// wall time (snapshots, policy passes, action execution, spill).
	KindCycleEnd
	// KindJobStart: a job launched. Partition is where it runs, Origin
	// its home partition when a spill re-routed it, Placement the
	// comma-joined node names.
	KindJobStart
	// KindJobEnd: a job left the system. Outcome is the
	// metrics.Outcome string (completed/cancelled/failed/timeout); a
	// job cancelled while still queued has never started.
	KindJobEnd
	// KindEngine is the simulation engine's progress heartbeat:
	// Processed events so far, every engineProbeEvery events.
	KindEngine
	// KindCell: one sweep grid cell finished. Cell/Cells are
	// done-so-far and total.
	KindCell
	// KindNodeDown: a node left service (fault injection). Placement is
	// the node name, Partition its partition, Outcome "down" for a hard
	// failure or "drain" for a drain window.
	KindNodeDown
	// KindNodeUp: a node returned to service. Placement/Partition as in
	// KindNodeDown; Outcome "up" after a repair, "drain-end" when a
	// drain window closed.
	KindNodeUp
	// KindRequeue: a running job was killed by a node fault and
	// requeued. Job is the job, Seq the NEW sequence it will re-enter
	// the queue under, Target the requeue attempt number (1-based),
	// Placement the failed node.
	KindRequeue
	// KindFork: a simulation lineage was forked at Time (snapshot /
	// what-if service). Queue/Running are the counts carried into the
	// fork; Job names the what-if candidate when one drove the fork.
	KindFork
)

var kindNames = [...]string{
	KindSubmit:     "submit",
	KindCycleStart: "cycle-start",
	KindPass:       "pass",
	KindAction:     "action",
	KindCycleEnd:   "cycle-end",
	KindJobStart:   "job-start",
	KindJobEnd:     "job-end",
	KindEngine:     "engine",
	KindCell:       "cell",
	KindNodeDown:   "node-down",
	KindNodeUp:     "node-up",
	KindRequeue:    "requeue",
	KindFork:       "fork",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Act is the attempted operation of a KindAction event.
type Act uint8

// Action verbs.
const (
	ActNone Act = iota
	ActStart
	ActShrink
	ActExpand
	ActSpill
	ActPreempt
)

var actNames = [...]string{
	ActNone:    "none",
	ActStart:   "start",
	ActShrink:  "shrink",
	ActExpand:  "expand",
	ActSpill:   "spill",
	ActPreempt: "preempt",
}

func (a Act) String() string {
	if int(a) < len(actNames) {
		return actNames[a]
	}
	return "unknown"
}

// Reason is the outcome of a KindAction event.
type Reason uint8

// Action outcomes.
const (
	ReasonNone Reason = iota
	// ReasonStarted: the action executed (a start launched, a resize
	// staged, a spill committed).
	ReasonStarted
	// ReasonBlockedByReservation: the spillover guard rejected the
	// placement because it could delay the host partition's EASY head
	// reservation (Shadow carries the reservation's shadow time).
	ReasonBlockedByReservation
	// ReasonSpilled: a spill committed; the job starts in Partition
	// instead of its home Origin.
	ReasonSpilled
	// ReasonSkipped: the executor rejected a policy action (the
	// capacity raced away, or the action named an unknown/foreign
	// job); the job stays queued.
	ReasonSkipped
)

var reasonNames = [...]string{
	ReasonNone:                 "none",
	ReasonStarted:              "started",
	ReasonBlockedByReservation: "blocked-by-reservation",
	ReasonSpilled:              "spilled",
	ReasonSkipped:              "skipped",
}

func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return "unknown"
}

// Event is one probe emission. It is a flat value: which fields are
// meaningful depends on Kind (see the Kind constants). Probe points
// fill only what they know; everything else is the zero value.
type Event struct {
	Kind   Kind
	Act    Act
	Reason Reason

	// Time is the virtual time in seconds.
	Time float64

	// Job identity: name and submission sequence (the scheduler's
	// stable handle; a preempted job requeues under a new Seq).
	Job string
	Seq int

	// Partition names where the event happened; Origin is the home
	// partition when it differs (spills).
	Partition string
	Origin    string

	// Request/placement shape.
	Priority  int
	Nodes     int
	CPUs      int
	Target    int
	Placement string

	// Snapshot counters (pass/cycle events).
	Queue   int
	Running int
	Free    int
	Cores   int

	// Shadow is the head reservation's shadow time on
	// blocked-by-reservation verdicts.
	Shadow float64

	// Outcome is the job's recorded outcome on KindJobEnd.
	Outcome string

	// WallNanos is real wall-clock time (cycle and Schedule timing).
	WallNanos int64

	// Processed is the engine's executed-event count.
	Processed int64

	// Cell/Cells is sweep progress (cells done / total).
	Cell  int
	Cells int
}

// Probe receives events from instrumented code. Emit is called from
// the simulation goroutine (or, for KindCell, under the sweep's
// emission lock): implementations need no internal locking unless
// they are shared across independently running probes.
type Probe interface {
	Emit(ev Event)
}

// Func adapts a function to the Probe interface.
type Func func(Event)

// Emit implements Probe.
func (f Func) Emit(ev Event) { f(ev) }

type multi []Probe

//simvet:guarded Multi drops nil consumers at construction
func (m multi) Emit(ev Event) {
	for _, p := range m {
		p.Emit(ev)
	}
}

// Multi fans one probe stream out to several consumers. Nil entries
// are dropped; Multi() of nothing (or of only nils) returns nil, so
// callers can compose optional consumers and hand the result straight
// to the instrumented code.
func Multi(ps ...Probe) Probe {
	out := make(multi, 0, len(ps))
	for _, p := range ps {
		if p != nil {
			out = append(out, p)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// Count is a trivial consumer counting events by kind (tests, and a
// cheap way to assert probes fire without retaining the stream).
type Count struct {
	ByKind [len(kindNames)]int64
	Total  int64
}

// Emit implements Probe.
func (c *Count) Emit(ev Event) {
	c.Total++
	if int(ev.Kind) < len(c.ByKind) {
		c.ByKind[ev.Kind]++
	}
}

// Of returns the count of one kind.
func (c *Count) Of(k Kind) int64 {
	if int(k) >= len(c.ByKind) {
		return 0
	}
	return c.ByKind[k]
}
