package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress renders sweep cell-completion events (KindCell) as a live
// one-line status: cells done/total, completion rate and ETA. It
// writes carriage-return-rewritten lines, so pointing it at stderr
// keeps the machine-readable sweep output on stdout untouched. Safe
// for concurrent Emit calls.
type Progress struct {
	w     io.Writer
	mu    sync.Mutex
	start time.Time
	now   func() time.Time // test hook; time.Now when nil
}

// NewProgress reports progress to w (normally os.Stderr).
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w}
}

func (p *Progress) clock() time.Time {
	if p.now != nil {
		return p.now()
	}
	return time.Now() //simvet:wallclock ETA rendering only, never reaches decisions
}

// Emit implements Probe; events other than KindCell are ignored.
func (p *Progress) Emit(ev Event) {
	if ev.Kind != KindCell || ev.Cells <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.start.IsZero() {
		p.start = p.clock()
	}
	elapsed := p.clock().Sub(p.start).Seconds()
	// The clock starts on the first cell, so its own elapsed time is
	// near zero and the naive rate would be absurd; wait for a
	// measurable baseline before quoting one.
	rateStr, eta := "--", "--"
	if elapsed > 10e-3 {
		rate := float64(ev.Cell) / elapsed
		rateStr = fmt.Sprintf("%.1f", rate)
		left := time.Duration(float64(ev.Cells-ev.Cell) / rate * float64(time.Second))
		eta = left.Round(time.Second).String()
	}
	fmt.Fprintf(p.w, "\rsweep: %d/%d cells (%s cells/s, ETA %s)   ", ev.Cell, ev.Cells, rateStr, eta)
	if ev.Cell >= ev.Cells {
		fmt.Fprintln(p.w)
	}
}
