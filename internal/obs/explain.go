package obs

import (
	"fmt"
	"strings"
)

// Explain reconstructs one job's lifecycle story from the probe
// stream: submission, queue-position evolution (it mirrors the
// controller's priority-descending / sequence-ascending queue order
// from submit/start/end events), the policy passes that considered
// the job and why they passed it over, spillover verdicts, final
// placement and completion. Build one per replay, run the replay,
// then read Story.
type Explain struct {
	target string

	// Tracked-job state.
	found     bool
	started   bool
	done      bool
	seq       int
	partition string
	submit    float64
	start     float64

	// Queue model: every waiting job, in the controller's order.
	queue []queueEntry

	// Pass bookkeeping while the job waits.
	lastPos    int
	lastOf     int
	passes     int64
	passesFree int // free CPUs seen by the latest pass of the job's partition

	b strings.Builder
}

type queueEntry struct {
	seq       int
	priority  int
	partition string
}

// NewExplain explains the job named jobID (golden-trace jobs are
// named j00001, j00002, …).
func NewExplain(jobID string) *Explain {
	return &Explain{target: jobID, lastPos: -1}
}

// insert keeps the queue model in controller order: priority
// descending, sequence ascending.
func (e *Explain) insert(q queueEntry) {
	i := len(e.queue)
	for i > 0 {
		prev := e.queue[i-1]
		if prev.priority > q.priority || (prev.priority == q.priority && prev.seq < q.seq) {
			break
		}
		i--
	}
	e.queue = append(e.queue, queueEntry{})
	copy(e.queue[i+1:], e.queue[i:])
	e.queue[i] = q
}

// remove drops seq from the queue model (no-op when absent).
func (e *Explain) remove(seq int) {
	for i, q := range e.queue {
		if q.seq == seq {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// position returns the job's 1-based rank among waiting jobs of its
// partition, and that partition's backlog size (0, 0 when absent).
func (e *Explain) position() (pos, of int) {
	for _, q := range e.queue {
		if q.partition != e.partition {
			continue
		}
		of++
		if q.seq == e.seq {
			pos = of
		}
	}
	if pos == 0 {
		return 0, 0
	}
	return pos, of
}

func (e *Explain) printf(format string, args ...interface{}) {
	fmt.Fprintf(&e.b, format, args...)
}

// Emit implements Probe.
func (e *Explain) Emit(ev Event) {
	switch ev.Kind {
	case KindSubmit:
		e.insert(queueEntry{seq: ev.Seq, priority: ev.Priority, partition: ev.Partition})
		if !e.found && ev.Job == e.target {
			e.found = true
			e.seq = ev.Seq
			e.partition = ev.Partition
			e.submit = ev.Time
			e.printf("t=%9.1fs  submitted to partition %q: %d node(s) × %d CPU(s)/node, priority %d\n",
				ev.Time, ev.Partition, ev.Nodes, ev.CPUs, ev.Priority)
			pos, of := e.position()
			e.printf("t=%9.1fs  enters the queue at position %d of %d\n", ev.Time, pos, of)
			e.lastPos, e.lastOf = pos, of
		}

	case KindPass:
		if !e.found || e.started || e.done || ev.Partition != e.partition {
			return
		}
		e.passes++
		e.passesFree = ev.Free
		if pos, of := e.position(); pos != e.lastPos || of != e.lastOf {
			e.printf("t=%9.1fs  queue position %d of %d (partition has %d of %d CPUs free)\n",
				ev.Time, pos, of, ev.Free, ev.Cores)
			e.lastPos, e.lastOf = pos, of
		}

	case KindAction:
		if !e.found || ev.Seq != e.seq || e.done {
			return
		}
		switch {
		case ev.Act == ActStart && ev.Reason == ReasonSkipped:
			e.printf("t=%9.1fs  policy admitted the job but placement failed (capacity raced away); stays queued\n", ev.Time)
		case ev.Act == ActSpill && ev.Reason == ReasonBlockedByReservation:
			e.printf("t=%9.1fs  spillover to %q blocked: starting there could delay its head reservation (shadow t=%.1fs)\n",
				ev.Time, ev.Partition, ev.Shadow)
		case ev.Act == ActPreempt:
			// The job was checkpointed and requeued under a new sequence.
			e.remove(e.seq)
			e.seq = ev.Seq
			e.started = false
			e.insert(queueEntry{seq: ev.Seq, priority: ev.Priority, partition: e.partition})
			e.printf("t=%9.1fs  preempted (checkpointed) and requeued\n", ev.Time)
		case ev.Act == ActShrink && ev.Reason == ReasonStarted:
			e.printf("t=%9.1fs  shrunk to %d CPU(s)/node\n", ev.Time, ev.Target)
		case ev.Act == ActExpand && ev.Reason == ReasonStarted:
			e.printf("t=%9.1fs  expanded to %d CPU(s)/node\n", ev.Time, ev.Target)
		}

	case KindRequeue:
		if !e.found || ev.Job != e.target || e.done {
			return
		}
		// Killed by a node fault; the job re-enters the queue (after a
		// backoff) under a new sequence, like a preemption.
		e.remove(e.seq)
		e.seq = ev.Seq
		e.started = false
		e.printf("t=%9.1fs  node %s failed; job killed and requeued (attempt %d)\n",
			ev.Time, ev.Placement, ev.Target)

	case KindJobStart:
		e.remove(ev.Seq)
		if !e.found || ev.Seq != e.seq || e.started {
			return
		}
		e.started = true
		if ev.Origin != "" {
			e.printf("t=%9.1fs  re-routed by spillover: home partition %q had no room, %q can host it now\n",
				ev.Time, ev.Origin, ev.Partition)
		}
		e.start = ev.Time
		wait := ev.Time - e.submit
		e.printf("t=%9.1fs  started on %s with %d CPU(s)/node after waiting %.1fs (considered by %d policy pass(es))\n",
			ev.Time, ev.Placement, ev.CPUs, wait, e.passes)

	case KindJobEnd:
		e.remove(ev.Seq)
		if !e.found || ev.Job != e.target || e.done {
			return
		}
		e.done = true
		if !e.started {
			e.printf("t=%9.1fs  %s while still queued, after waiting %.1fs\n",
				ev.Time, ev.Outcome, ev.Time-e.submit)
			return
		}
		e.printf("t=%9.1fs  %s after running %.1fs (response time %.1fs)\n",
			ev.Time, ev.Outcome, ev.Time-e.start, ev.Time-e.submit)
	}
}

// Story returns the reconstructed lifecycle, or a one-line diagnosis
// when the job never appeared in the stream.
func (e *Explain) Story() string {
	if !e.found {
		return fmt.Sprintf("job %q: never submitted in this replay (check the job name)\n", e.target)
	}
	s := fmt.Sprintf("job %s:\n%s", e.target, e.b.String())
	if !e.done {
		if e.started {
			s += "(still running when the replay ended)\n"
		} else {
			s += fmt.Sprintf("(still queued when the replay ended; last seen at position %d of %d with %d CPUs free)\n",
				e.lastPos, e.lastOf, e.passesFree)
		}
	}
	return s
}
