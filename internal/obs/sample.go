package obs

import (
	"bufio"
	"io"
	"strconv"
)

// Sampler emits a per-partition time series on a fixed virtual-time
// grid: at every interval boundary it writes one row per partition
// with the utilization, queue depth, running-job count and cumulative
// spill tallies the scheduler last reported before that instant. Rows
// are CSV by default (header first) or JSONL, and depend only on the
// replay's decisions — the output of a deterministic replay is itself
// byte-for-byte reproducible and plots directly.
type Sampler struct {
	interval float64
	next     float64
	w        *bufio.Writer
	jsonFmt  bool
	err      error

	order  []string // partitions in first-seen order
	parts  map[string]*partSample
	lineB  []byte
	header bool
}

type partSample struct {
	queue, running int
	free, cores    int
	spilledIn      int64 // jobs this partition hosted for others
	spilledOut     int64 // jobs this partition's queue spilled away
}

// NewSampler samples every interval virtual seconds (minimum 1s) and
// writes rows to w; jsonFmt selects JSONL over CSV. Call Flush when
// the run completes.
func NewSampler(interval float64, w io.Writer, jsonFmt bool) *Sampler {
	if interval < 1 {
		interval = 1
	}
	return &Sampler{
		interval: interval,
		next:     interval,
		w:        bufio.NewWriter(w),
		jsonFmt:  jsonFmt,
		parts:    make(map[string]*partSample),
	}
}

// part returns (creating) the state of one partition.
func (s *Sampler) part(name string) *partSample {
	if p, ok := s.parts[name]; ok {
		return p
	}
	p := &partSample{}
	s.parts[name] = p
	s.order = append(s.order, name)
	return p
}

// Emit implements Probe.
func (s *Sampler) Emit(ev Event) {
	switch ev.Kind {
	case KindCycleStart, KindEngine:
		s.advance(ev.Time)
	case KindPass:
		s.advance(ev.Time)
		p := s.part(ev.Partition)
		p.queue = ev.Queue
		p.running = ev.Running
		p.free = ev.Free
		p.cores = ev.Cores
	case KindAction:
		if ev.Act == ActSpill && ev.Reason == ReasonSpilled {
			s.part(ev.Partition).spilledIn++
			s.part(ev.Origin).spilledOut++
		}
	}
}

// advance writes rows for every grid boundary that now has passed.
// Between boundaries the partition state is a step function of the
// last scheduler pass, so each crossed boundary samples that state.
func (s *Sampler) advance(now float64) {
	for s.next <= now {
		s.writeRows(s.next)
		s.next += s.interval
	}
}

func (s *Sampler) writeRows(t float64) {
	if !s.jsonFmt && !s.header {
		s.header = true
		s.write([]byte("t,partition,util,queue_depth,running,spilled_in,spilled_out\n"))
	}
	for _, name := range s.order {
		p := s.parts[name]
		util := 0.0
		if p.cores > 0 {
			util = float64(p.cores-p.free) / float64(p.cores)
		}
		b := s.lineB[:0]
		if s.jsonFmt {
			b = append(b, `{"t":`...)
			b = strconv.AppendFloat(b, t, 'g', -1, 64)
			b = append(b, `,"partition":`...)
			b = strconv.AppendQuote(b, name)
			b = append(b, `,"util":`...)
			b = strconv.AppendFloat(b, util, 'g', 6, 64)
			b = append(b, `,"queue_depth":`...)
			b = strconv.AppendInt(b, int64(p.queue), 10)
			b = append(b, `,"running":`...)
			b = strconv.AppendInt(b, int64(p.running), 10)
			b = append(b, `,"spilled_in":`...)
			b = strconv.AppendInt(b, p.spilledIn, 10)
			b = append(b, `,"spilled_out":`...)
			b = strconv.AppendInt(b, p.spilledOut, 10)
			b = append(b, '}', '\n')
		} else {
			b = strconv.AppendFloat(b, t, 'g', -1, 64)
			b = append(b, ',')
			b = append(b, name...)
			b = append(b, ',')
			b = strconv.AppendFloat(b, util, 'g', 6, 64)
			b = append(b, ',')
			b = strconv.AppendInt(b, int64(p.queue), 10)
			b = append(b, ',')
			b = strconv.AppendInt(b, int64(p.running), 10)
			b = append(b, ',')
			b = strconv.AppendInt(b, p.spilledIn, 10)
			b = append(b, ',')
			b = strconv.AppendInt(b, p.spilledOut, 10)
			b = append(b, '\n')
		}
		s.lineB = b
		s.write(b)
	}
}

func (s *Sampler) write(b []byte) {
	if s.err != nil {
		return
	}
	_, s.err = s.w.Write(b)
}

// Flush emits one final sample row at the next grid boundary (so a
// run shorter than one interval still produces output) and flushes
// the writer, returning the first write error.
func (s *Sampler) Flush() error {
	if len(s.order) > 0 {
		s.writeRows(s.next)
	}
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}
