package obs_test

import (
	"os"

	"repro/internal/obs"
)

// ExampleSampler shows the virtual-time sampler on a hand-written
// decision stream: two scheduler passes at t=30 and t=400 on a
// 600-second grid produce one row per crossed boundary with the state
// the scheduler last reported before it.
func ExampleSampler() {
	s := obs.NewSampler(600, os.Stdout, false)
	s.Emit(obs.Event{Kind: obs.KindPass, Time: 30, Partition: "batch",
		Queue: 5, Running: 2, Free: 16, Cores: 64})
	s.Emit(obs.Event{Kind: obs.KindPass, Time: 400, Partition: "batch",
		Queue: 1, Running: 4, Free: 0, Cores: 64})
	s.Emit(obs.Event{Kind: obs.KindEngine, Time: 1300}) // heartbeat crosses t=600 and t=1200
	if err := s.Flush(); err != nil {
		panic(err)
	}
	// Output:
	// t,partition,util,queue_depth,running,spilled_in,spilled_out
	// 600,batch,1,1,4,0,0
	// 1200,batch,1,1,4,0,0
	// 1800,batch,1,1,4,0,0
}
