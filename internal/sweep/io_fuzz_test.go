package sweep

import "testing"

// FuzzParseGrid: the experiment-grid grammar must never panic and
// every accepted grid must be internally bounded — the seed-range cap
// keeps expansion small, numbers land where their keys say. The seed
// corpus covers every key of the grammar plus the separators and the
// historically interesting rejections (bad ranges, oversized ranges,
// dangling '='). Plain `go test` replays the corpus.
func FuzzParseGrid(f *testing.F) {
	for _, seed := range []string{
		"policies=all;seeds=1-4;jobs=5000",
		"policy=fcfs,easy;seed=7",
		"sched=batch=easy,fat=malleable-shrink;seeds=1",
		"seeds=1,3,5-8;jobs=100;nodes=8",
		"cluster=batch:4xmn3,fat:2xfat;policies=all",
		"cluster=hetero",
		"cancel=0.06;fail=0.06;spill=1;spillafter=300;spilldepth=2",
		"nodefaults=node0:down@100..400+node1:drain@200..300;mtbf=5000;mttr=800;requeue=2",
		"ia=60;stream=1;check=true",
		"swf=trace.swf;max=100",
		"seeds=9999999999999999999",
		"seeds=5-1",
		"seeds=1-999999",
		"jobs=",
		"bogus=1",
		"policies",
		"; ;\t;",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		g, err := ParseGrid(spec)
		if err != nil {
			return
		}
		if len(g.Seeds) > 100000 {
			t.Fatalf("accepted grid %q expands to %d seeds; the range cap leaks", spec, len(g.Seeds))
		}
		for _, v := range []float64{g.CancelRate, g.FailRate} {
			if v < 0 || v > 1 || v != v {
				t.Fatalf("accepted grid %q carries invalid probability %g", spec, v)
			}
		}
		for _, v := range []float64{g.MeanInterarrival, g.MTBF, g.MTTR, g.SpillAfter} {
			if v < 0 || v != v {
				t.Fatalf("accepted grid %q carries invalid duration %g", spec, v)
			}
		}
	})
}
