package sweep_test

import (
	"fmt"

	"repro/internal/sweep"
)

// ExampleParseGrid parses the compact grid spec of the slurmsim
// -sweep flag and enumerates the experiments it defines, in the
// deterministic grid order results are aggregated in.
func ExampleParseGrid() {
	g, err := sweep.ParseGrid("policies=fcfs,easy;seeds=1-2;jobs=500;cluster=hetero")
	if err != nil {
		panic(err)
	}
	for _, e := range g.Experiments() {
		fmt.Printf("%d %s seed=%d\n", e.Index, e.Policy, e.Seed)
	}
	// Output:
	// 0 fcfs seed=1
	// 1 easy seed=1
	// 2 fcfs seed=2
	// 3 easy seed=2
}

// ExampleRun executes a tiny 2-experiment grid on one worker and
// prints the deterministic outcome fields. Any worker count yields
// byte-identical results.
func ExampleRun() {
	sum, err := sweep.Run(sweep.Grid{
		Policies: []string{"fcfs", "malleable-expand"},
		Seeds:    []int64{1},
		Jobs:     60,
		Nodes:    2,
	}, 1)
	if err != nil {
		panic(err)
	}
	for _, r := range sum.Results {
		fmt.Printf("%s jobs=%d mean_wait=%.1fs\n", r.Policy, r.Jobs, r.Stats.MeanWait)
	}
	// Output:
	// fcfs jobs=60 mean_wait=175.9s
	// malleable-expand jobs=60 mean_wait=0.0s
}
