// Package sweep is the parallel experiment engine: it fans a
// (scheduling policy × trace × seed) grid across GOMAXPROCS workers,
// each experiment fully isolated — its own shmem registry, simulation
// engine and controller, created by the workload runner — and
// aggregates the results in grid order, so the output is byte-
// identical regardless of worker count.
//
// The paper's evaluation (§6) is exactly such a grid: policies ×
// workloads × configurations. Independent replays share nothing but
// immutable inputs (the scenario's submission list, the machine
// model, the calibrated application specs — all either read-only or
// copied per run), which makes the sweep embarrassingly parallel.
package sweep

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/hwmodel"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Grid describes an experiment grid. The cross product of Policies
// and Seeds defines the experiments; each replays the same trace
// shape under one policy.
type Grid struct {
	// Policies are sched policy names (sched.Names() when empty) or
	// per-partition policy-set specs in the sched.ParsePolicySet
	// grammar ("batch=easy,fat=malleable-shrink"; the grid key for
	// such specs is sched=, repeatable).
	Policies []string
	// Seeds selects the synthetic traces (default {1}). Ignored when
	// SWFPath is set (a file is one trace; Seeds collapses to one
	// experiment per policy).
	Seeds []int64
	// Jobs per synthetic trace (default 1000).
	Jobs int
	// Nodes is the cluster size (default 4). Ignored when Cluster is
	// set.
	Nodes int
	// Cluster, when non-empty, runs every experiment on a partitioned
	// heterogeneous cluster (hwmodel.ClusterSpec); the grid key is
	// cluster=<spec> in the ParseCluster grammar.
	Cluster hwmodel.ClusterSpec
	// MeanInterarrival is the synthetic generator's inter-arrival mean
	// in seconds (default 60).
	MeanInterarrival float64
	// CancelRate / FailRate are the synthetic generator's per-job
	// fault probabilities (grid keys cancel= and fail=).
	CancelRate float64
	FailRate   float64
	// Spill enables the cross-partition spillover pass on every
	// experiment (grid key spill=1); SpillAfter / SpillDepth are its
	// eligibility thresholds (spillafter= seconds, spilldepth= jobs).
	Spill      bool
	SpillAfter float64
	SpillDepth int
	// NodeFaults is a deterministic node outage script applied to every
	// experiment (grid key nodefaults=, entries joined with '+' — the
	// grid grammar owns ';'; see slurm.FaultPlan.Script). MTBF/MTTR arm
	// the seeded per-node failure process (grid keys mtbf= and mttr=,
	// virtual seconds); the fault stream is seeded from each
	// experiment's trace seed, so cells stay independent and
	// reproducible. MaxRequeues is the per-job requeue cap (grid key
	// requeue=; 0 = default, negative = none).
	NodeFaults  string
	MTBF        float64
	MTTR        float64
	MaxRequeues int
	// SWFPath replays a Standard Workload Format file instead of the
	// synthetic generator.
	SWFPath string
	// MaxJobs truncates an SWF file trace (0 = all).
	MaxJobs int
	// Stream replays each experiment through the bounded-memory
	// streaming path (aggregate statistics only; no per-job records,
	// no P95s). Required for million-job traces.
	Stream bool
	// KeepJobs retains per-job records in every result (incompatible
	// with Stream); the determinism tests diff them byte for byte.
	KeepJobs bool
	// DebugInvariants enables the controller's per-cycle accounting
	// cross-checks (slow).
	DebugInvariants bool
	// Probe receives one obs.KindCell event per finished experiment
	// (Cell = done so far, Cells = total), serialized under the
	// sweep's emission lock — the live-progress hook. It observes
	// completion order only; result aggregation stays in grid order
	// and byte-identical at any worker count. Not a grid key.
	Probe obs.Probe `json:"-"`
}

func (g Grid) withDefaults() Grid {
	if len(g.Policies) == 0 {
		g.Policies = sched.Names()
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []int64{1}
	}
	if g.SWFPath != "" {
		g.Seeds = g.Seeds[:1]
	}
	if g.Jobs <= 0 {
		g.Jobs = 1000
	}
	if g.Nodes <= 0 {
		g.Nodes = 4
	}
	if g.MeanInterarrival <= 0 {
		g.MeanInterarrival = 60
	}
	return g
}

// Experiment is one cell of the grid.
type Experiment struct {
	Index  int    `json:"index"`
	Policy string `json:"policy"`
	Seed   int64  `json:"seed"`
	Trace  string `json:"trace"`
}

// Result is one finished experiment. Wall-clock fields vary run to
// run; everything else is deterministic.
type Result struct {
	Experiment
	Jobs        int                `json:"jobs"`
	WallSeconds float64            `json:"wall_seconds"`
	Cycles      int64              `json:"sched_cycles"`
	Events      int64              `json:"sim_events"`
	Stats       metrics.SchedStats `json:"stats"`
	// Dropped counts trace records the mapping layer discarded before
	// submission (omitted when the whole trace replayed).
	Dropped metrics.DropStats `json:"dropped,omitzero"`
	// Partitions carries the per-partition split on multi-partition
	// clusters (nil on homogeneous runs).
	Partitions []metrics.PartitionStat `json:"partitions,omitempty"`
	Err        string                  `json:"error,omitempty"`
	// Records holds the per-job records when Grid.KeepJobs is set.
	Records []metrics.JobRecord `json:"-"`
}

// Summary is a finished sweep: results in grid order plus the sweep's
// own wall clock.
type Summary struct {
	Trace       string   `json:"trace"`
	Workers     int      `json:"workers"`
	WallSeconds float64  `json:"wall_seconds"`
	Results     []Result `json:"results"`
}

// Experiments enumerates the grid in deterministic order: seeds
// outer, policies inner (one row per trace, one column per policy,
// like the paper's tables).
func (g Grid) Experiments() []Experiment {
	g = g.withDefaults()
	exps := make([]Experiment, 0, len(g.Seeds)*len(g.Policies))
	for _, seed := range g.Seeds {
		for _, pol := range g.Policies {
			exps = append(exps, Experiment{
				Index:  len(exps),
				Policy: pol,
				Seed:   seed,
				Trace:  g.traceName(seed),
			})
		}
	}
	return exps
}

// shapeName renders the cluster part of a trace label.
func (g Grid) shapeName() string {
	if len(g.Cluster.Partitions) > 0 {
		return fmt.Sprintf("cluster=%s", g.Cluster)
	}
	return fmt.Sprintf("nodes=%d", g.Nodes)
}

// faultName renders the fault-rate part of a trace label ("" when the
// generator is clean).
func (g Grid) faultName() string {
	if g.CancelRate <= 0 && g.FailRate <= 0 {
		return ""
	}
	return fmt.Sprintf(" cancel=%g fail=%g", g.CancelRate, g.FailRate)
}

// spillName renders the spillover part of a trace label ("" when the
// pass is off).
func (g Grid) spillName() string {
	if !g.Spill {
		return ""
	}
	s := " spill=1"
	if g.SpillAfter > 0 {
		s += fmt.Sprintf(" spillafter=%g", g.SpillAfter)
	}
	if g.SpillDepth > 0 {
		s += fmt.Sprintf(" spilldepth=%d", g.SpillDepth)
	}
	return s
}

// nodeFaultName renders the node-fault part of a trace label ("" when
// the fault model is off).
func (g Grid) nodeFaultName() string {
	if g.NodeFaults == "" && g.MTBF <= 0 {
		return ""
	}
	var s string
	if g.NodeFaults != "" {
		s += fmt.Sprintf(" nodefaults=%s", g.NodeFaults)
	}
	if g.MTBF > 0 {
		s += fmt.Sprintf(" mtbf=%g mttr=%g", g.MTBF, g.MTTR)
	}
	if g.MaxRequeues != 0 {
		s += fmt.Sprintf(" requeue=%d", g.MaxRequeues)
	}
	return s
}

func (g Grid) traceName(seed int64) string {
	if g.SWFPath != "" {
		return fmt.Sprintf("swf:%s", g.SWFPath)
	}
	return fmt.Sprintf("synthetic seed=%d jobs=%d %s%s%s%s",
		seed, g.Jobs, g.shapeName(), g.faultName(), g.spillName(), g.nodeFaultName())
}

// gridName describes the whole grid (the summary-level label; the
// per-result Trace fields carry the individual seeds).
func (g Grid) gridName() string {
	if g.SWFPath != "" {
		return fmt.Sprintf("swf:%s", g.SWFPath)
	}
	seeds := make([]string, len(g.Seeds))
	for i, s := range g.Seeds {
		seeds[i] = strconv.FormatInt(s, 10)
	}
	return fmt.Sprintf("synthetic seeds=%s jobs=%d %s%s%s%s",
		strings.Join(seeds, ","), g.Jobs, g.shapeName(), g.faultName(), g.spillName(), g.nodeFaultName())
}

// Run executes the grid on the given number of workers (<= 0 means
// GOMAXPROCS). Experiments are handed to workers through a channel
// and each runs in complete isolation; results land in a slice
// indexed by grid position, so the summary is independent of worker
// count and scheduling order.
func Run(g Grid, workers int) (Summary, error) {
	g = g.withDefaults()
	if g.Stream && g.KeepJobs {
		return Summary{}, fmt.Errorf("sweep: KeepJobs requires the materialized path (Stream=false)")
	}
	exps := g.Experiments()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}

	// Materialize each distinct trace once and share it read-only:
	// the runner copies every job before submitting, so concurrent
	// experiments on one scenario never race. Streamed experiments
	// build their own source instead (sources are stateful).
	scenarios := make(map[int64]workload.Scenario, len(g.Seeds))
	if !g.Stream {
		for _, seed := range g.Seeds {
			sc, err := g.scenario(seed)
			if err != nil {
				return Summary{}, err
			}
			scenarios[seed] = sc
		}
	}

	results := make([]Result, len(exps))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	// Cell-completion probe state: done counts completions across
	// workers, and emitMu serializes emissions so consumers see a
	// monotonic done/total sequence without locking of their own.
	var emitMu sync.Mutex
	done := 0
	cellDone := func() {
		if g.Probe == nil {
			return
		}
		emitMu.Lock()
		done++
		g.Probe.Emit(obs.Event{Kind: obs.KindCell, Cell: done, Cells: len(exps)})
		emitMu.Unlock()
	}
	start := time.Now() //simvet:wallclock wall-time meta only; WallSeconds is documented nondeterministic
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				results[i] = g.runOne(exps[i], scenarios)
				cellDone()
			}
		}()
	}
	for i := range exps {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	sum := Summary{
		Trace:       g.gridName(),
		Workers:     workers,
		WallSeconds: time.Since(start).Seconds(),
		Results:     results,
	}
	for _, r := range results {
		if r.Err != "" {
			return sum, fmt.Errorf("sweep: experiment %d (%s seed %d): %s", r.Index, r.Policy, r.Seed, r.Err)
		}
	}
	return sum, nil
}

// scenario materializes the trace for one seed.
func (g Grid) scenario(seed int64) (workload.Scenario, error) {
	if g.SWFPath != "" {
		return scenarioFromFile(g.SWFPath, workload.SWFOptions{
			Nodes: g.Nodes, Cluster: g.Cluster, MaxJobs: g.MaxJobs,
		})
	}
	return workload.SyntheticSWFScenario(g.synthetic(seed))
}

// synthetic parameterizes the generator for one seed.
func (g Grid) synthetic(seed int64) workload.SyntheticSWF {
	return workload.SyntheticSWF{
		Seed: seed, Jobs: g.Jobs, Nodes: g.Nodes, MeanInterarrival: g.MeanInterarrival,
		Cluster: g.Cluster, CancelRate: g.CancelRate, FailRate: g.FailRate,
	}
}

// spillInto copies the grid's spillover knobs onto a scenario.
func (g Grid) spillInto(sc *workload.Scenario) {
	sc.Spill = g.Spill
	sc.SpillAfter = g.SpillAfter
	sc.SpillDepth = g.SpillDepth
}

// faultsInto copies the grid's node-fault knobs onto a scenario. The
// fault stream is seeded from the experiment's trace seed so each cell
// is reproducible in isolation.
func (g Grid) faultsInto(sc *workload.Scenario, seed int64) {
	sc.NodeFaults = g.NodeFaults
	sc.MTBF = g.MTBF
	sc.MTTR = g.MTTR
	sc.MaxRequeues = g.MaxRequeues
	sc.FaultSeed = seed
}

// runOne executes one experiment in isolation. The policy cell may be
// a bare policy name or a per-partition policy-set spec; either way
// each experiment instantiates its own policy instances.
func (g Grid) runOne(e Experiment, scenarios map[int64]workload.Scenario) Result {
	out := Result{Experiment: e}
	ps, err := sched.ParsePolicySet(e.Policy)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	t0 := time.Now() //simvet:wallclock wall-time meta only; WallSeconds is documented nondeterministic
	var res workload.Result
	var stats metrics.SchedStats
	if g.Stream {
		src, err := g.source(e.Seed)
		if err != nil {
			out.Err = err.Error()
			return out
		}
		base := workload.Scenario{Nodes: g.Nodes, Cluster: g.Cluster, DebugInvariants: g.DebugInvariants}
		g.spillInto(&base)
		g.faultsInto(&base, e.Seed)
		res = workload.RunSchedStreamSet(base, src, ps)
		stats = workload.SchedStatsOfStream(res)
	} else {
		sc := scenarios[e.Seed]
		sc.DebugInvariants = g.DebugInvariants
		g.spillInto(&sc)
		g.faultsInto(&sc, e.Seed)
		res = workload.RunSchedSet(sc, ps)
		stats = workload.SchedStatsOf(sc, res)
	}
	out.WallSeconds = time.Since(t0).Seconds()
	if res.Err != nil {
		out.Err = res.Err.Error()
		return out
	}
	out.Jobs = res.Records.Count()
	out.Cycles = res.SchedCycles
	out.Events = res.Events
	out.Stats = stats
	out.Dropped = res.Records.Dropped
	if len(g.Cluster.Partitions) > 1 {
		out.Partitions = res.Records.PartitionStats()
	}
	if g.KeepJobs {
		out.Records = append([]metrics.JobRecord(nil), res.Records.Jobs...)
	}
	return out
}

// source builds a fresh streaming source for one experiment.
func (g Grid) source(seed int64) (workload.SubmissionSource, error) {
	if g.SWFPath != "" {
		return sourceFromFile(g.SWFPath, workload.SWFOptions{
			Nodes: g.Nodes, Cluster: g.Cluster, MaxJobs: g.MaxJobs,
		})
	}
	return g.synthetic(seed).Source(), nil
}

// StartsListing renders the per-job start times of every experiment
// in the golden-file format of the decision tests (policy, job name,
// submit, start — jobs sorted by name). It requires KeepJobs.
func (s Summary) StartsListing() string {
	var sb strings.Builder
	for _, r := range s.Results {
		rs := append([]metrics.JobRecord(nil), r.Records...)
		sort.Slice(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name })
		for _, j := range rs {
			fmt.Fprintf(&sb, "%s %s %s %s\n", r.Policy, j.Name,
				strconv.FormatFloat(j.Submit, 'g', -1, 64),
				strconv.FormatFloat(j.Start, 'g', -1, 64))
		}
	}
	return sb.String()
}
