package sweep

// Grid-spec parsing and summary rendering: the slurmsim CLI surface
// of the sweep engine.

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/hwmodel"
	"repro/internal/sched"
	"repro/internal/workload"
)

// ParseGrid parses a compact grid spec of the form
//
//	policies=fcfs,easy;seeds=1-4;jobs=2000;nodes=4;ia=60
//
// Fields are key=value pairs separated by ';' (or whitespace). Keys:
//
//	policies  comma list of sched policy names, or "all" (default all)
//	sched     one per-partition policy-set spec in the
//	          sched.ParsePolicySet grammar, e.g.
//	          sched=batch=easy,fat=malleable-shrink — repeatable; each
//	          occurrence appends one policy cell to the grid
//	seeds     comma list and/or lo-hi ranges, e.g. "1,3,5-8" (default 1)
//	jobs      synthetic trace length (default 1000)
//	nodes     cluster size (default 4)
//	cluster   partitioned heterogeneous cluster spec, e.g.
//	          batch:4xmn3,fat:2xfat or the "hetero" preset
//	          (hwmodel.ParseCluster grammar; overrides nodes)
//	cancel    synthetic per-job cancellation probability (0..1)
//	fail      synthetic per-job failure probability (0..1)
//	spill     1/true: cross-partition spillover pass
//	spillafter  spillover wait threshold in seconds
//	spilldepth  spillover home-backlog depth threshold
//	nodefaults  deterministic node outage script, entries joined with
//	          '+', e.g. node0:down@100..400+node5:drain@200..300
//	          (slurm.FaultPlan.Script grammar; ';' belongs to this
//	          grid grammar and cannot appear inside the script)
//	mtbf      mean time between seeded node failures in virtual
//	          seconds (0 = off); the fault stream is seeded from each
//	          experiment's trace seed
//	mttr      mean repair time of seeded failures in virtual seconds
//	requeue   per-job requeue cap after node failures (0 = default,
//	          negative = none)
//	ia        mean inter-arrival seconds (default 60)
//	swf       SWF trace file to replay instead of the generator
//	max       truncate an SWF trace to this many jobs
//	stream    1/true: bounded-memory streaming replay
//	check     1/true: per-cycle invariant cross-checks (slow)
func ParseGrid(spec string) (Grid, error) {
	var g Grid
	fields := strings.FieldsFunc(spec, func(r rune) bool {
		return r == ';' || r == ' ' || r == '\t'
	})
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Grid{}, fmt.Errorf("sweep: malformed grid field %q (want key=value)", f)
		}
		switch k {
		case "policies", "policy":
			// "all" expands eagerly: relying on the empty-Policies
			// default would silently drop it when a sched= cell also
			// populated the grid.
			if v == "all" {
				g.Policies = append(g.Policies, sched.Names()...)
			} else {
				g.Policies = append(g.Policies, strings.Split(v, ",")...)
			}
		case "sched":
			// One policy-set spec per occurrence: the value itself
			// contains "=" pairs and commas, so it cannot ride in the
			// comma list of the policies key.
			if _, err := sched.ParsePolicySet(v); err != nil {
				return Grid{}, err
			}
			g.Policies = append(g.Policies, v)
		case "seeds", "seed":
			seeds, err := parseSeeds(v)
			if err != nil {
				return Grid{}, err
			}
			g.Seeds = seeds
		case "jobs":
			n, err := strconv.Atoi(v)
			if err != nil {
				return Grid{}, fmt.Errorf("sweep: jobs: %v", err)
			}
			g.Jobs = n
		case "nodes":
			n, err := strconv.Atoi(v)
			if err != nil {
				return Grid{}, fmt.Errorf("sweep: nodes: %v", err)
			}
			g.Nodes = n
		case "cluster":
			cs, err := hwmodel.ParseCluster(v)
			if err != nil {
				return Grid{}, fmt.Errorf("sweep: cluster: %v", err)
			}
			g.Cluster = cs
		case "cancel":
			x, err := parseRate(v)
			if err != nil {
				return Grid{}, fmt.Errorf("sweep: cancel: %v", err)
			}
			g.CancelRate = x
		case "fail":
			x, err := parseRate(v)
			if err != nil {
				return Grid{}, fmt.Errorf("sweep: fail: %v", err)
			}
			g.FailRate = x
		case "ia", "interarrival":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil || x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return Grid{}, fmt.Errorf("sweep: ia: bad mean %q", v)
			}
			g.MeanInterarrival = x
		case "swf":
			g.SWFPath = v
		case "max":
			n, err := strconv.Atoi(v)
			if err != nil {
				return Grid{}, fmt.Errorf("sweep: max: %v", err)
			}
			g.MaxJobs = n
		case "spill":
			g.Spill = v == "1" || v == "true"
		case "spillafter":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil || x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return Grid{}, fmt.Errorf("sweep: spillafter: bad threshold %q", v)
			}
			g.SpillAfter = x
		case "spilldepth":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return Grid{}, fmt.Errorf("sweep: spilldepth: bad depth %q", v)
			}
			g.SpillDepth = n
		case "nodefaults":
			g.NodeFaults = v
		case "mtbf":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil || x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return Grid{}, fmt.Errorf("sweep: mtbf: bad mean %q", v)
			}
			g.MTBF = x
		case "mttr":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil || x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return Grid{}, fmt.Errorf("sweep: mttr: bad mean %q", v)
			}
			g.MTTR = x
		case "requeue":
			n, err := strconv.Atoi(v)
			if err != nil {
				return Grid{}, fmt.Errorf("sweep: requeue: %v", err)
			}
			g.MaxRequeues = n
		case "stream":
			g.Stream = v == "1" || v == "true"
		case "check":
			g.DebugInvariants = v == "1" || v == "true"
		default:
			return Grid{}, fmt.Errorf("sweep: unknown grid key %q", k)
		}
	}
	return g, nil
}

// parseRate parses a probability in [0, 1]. NaN needs its own check:
// it fails both range comparisons, so the interval test alone would
// let "nan" through (ParseFloat parses that spelling without error).
func parseRate(v string) (float64, error) {
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if x < 0 || x > 1 || math.IsNaN(x) {
		return 0, fmt.Errorf("rate %v outside [0,1]", x)
	}
	return x, nil
}

// parseSeeds accepts comma lists with lo-hi ranges: "1,3,5-8".
func parseSeeds(v string) ([]int64, error) {
	var seeds []int64
	for _, part := range strings.Split(v, ",") {
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.ParseInt(lo, 10, 64)
			b, err2 := strconv.ParseInt(hi, 10, 64)
			if err1 != nil || err2 != nil || b < a {
				return nil, fmt.Errorf("sweep: bad seed range %q", part)
			}
			if b-a >= 10000 {
				return nil, fmt.Errorf("sweep: seed range %q too large", part)
			}
			for s := a; s <= b; s++ {
				seeds = append(seeds, s)
			}
			continue
		}
		s, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad seed %q", part)
		}
		seeds = append(seeds, s)
	}
	return seeds, nil
}

// WriteJSON renders the summary as indented JSON.
func (s Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV renders one row per experiment.
func (s Summary) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"index", "policy", "seed", "jobs", "wall_seconds", "sched_cycles", "sim_events",
		"makespan_s", "mean_wait_s", "p95_wait_s", "mean_resp_s", "mean_bsld",
		"failed", "cancelled", "spilled", "requeues", "node_failed", "dropped", "error",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range s.Results {
		if err := cw.Write([]string{
			strconv.Itoa(r.Index), r.Policy, strconv.FormatInt(r.Seed, 10),
			strconv.Itoa(r.Jobs), f(r.WallSeconds),
			strconv.FormatInt(r.Cycles, 10), strconv.FormatInt(r.Events, 10),
			f(r.Stats.Makespan), f(r.Stats.MeanWait), f(r.Stats.P95Wait),
			f(r.Stats.MeanResponse), f(r.Stats.MeanSlowdown),
			strconv.Itoa(r.Stats.Failed), strconv.Itoa(r.Stats.Cancelled),
			strconv.Itoa(r.Stats.Spilled), strconv.Itoa(r.Stats.Requeues),
			strconv.Itoa(r.Stats.NodeFailed), strconv.Itoa(r.Dropped.Total()), r.Err,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table renders an aligned text table like the paper's figures: one
// row per (seed, policy) with the headline scheduler metrics.
func (s Summary) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s %-17s %6s %8s %10s %12s %12s %12s %10s\n",
		"seed", "policy", "jobs", "wall-s", "cycles", "makespan-s", "mean-wait-s", "mean-resp-s", "mean-bsld")
	for _, r := range s.Results {
		if r.Err != "" {
			fmt.Fprintf(&sb, "%-5d %-17s ERROR %s\n", r.Seed, r.Policy, r.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-5d %-17s %6d %8.2f %10d %12.0f %12.1f %12.1f %10.2f\n",
			r.Seed, r.Policy, r.Jobs, r.WallSeconds, r.Cycles,
			r.Stats.Makespan, r.Stats.MeanWait, r.Stats.MeanResponse, r.Stats.MeanSlowdown)
		if r.Stats.Failed > 0 || r.Stats.Cancelled > 0 || r.Stats.Spilled > 0 ||
			r.Stats.Requeues > 0 || r.Stats.NodeFailed > 0 || r.Dropped.Total() > 0 {
			line := fmt.Sprintf("failed=%d cancelled=%d", r.Stats.Failed, r.Stats.Cancelled)
			if r.Stats.Spilled > 0 {
				line += fmt.Sprintf(" spilled=%d", r.Stats.Spilled)
			}
			if r.Stats.Requeues > 0 || r.Stats.NodeFailed > 0 {
				line += fmt.Sprintf(" requeued=%d node_failed=%d down_node=%.0fs",
					r.Stats.Requeues, r.Stats.NodeFailed, r.Stats.DownNodeS)
			}
			if r.Dropped.Total() > 0 {
				line += fmt.Sprintf(" trace: %s", r.Dropped)
			}
			fmt.Fprintf(&sb, "      %-17s %s\n", "", line)
		}
		for _, ps := range r.Partitions {
			fmt.Fprintf(&sb, "      %-17s %s\n", "", ps)
		}
	}
	fmt.Fprintf(&sb, "%d experiments on %d workers in %.2fs wall\n",
		len(s.Results), s.Workers, s.WallSeconds)
	return sb.String()
}

// scenarioFromFile materializes an SWF file trace.
func scenarioFromFile(path string, o workload.SWFOptions) (workload.Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return workload.Scenario{}, err
	}
	defer f.Close()
	jobs, err := workload.ParseSWF(f)
	if err != nil {
		return workload.Scenario{}, err
	}
	sc, _, err := workload.SWFScenario(jobs, o)
	return sc, err
}

// sourceFromFile opens a streaming source over an SWF file. The
// source's parser goroutine closes the file when it exits (EOF,
// parse error, or Close).
func sourceFromFile(path string, o workload.SWFOptions) (workload.SubmissionSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return workload.NewSWFReaderSource(f, o), nil
}
