package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hwmodel"
)

// stripWall zeroes the wall-clock fields, which legitimately vary
// between runs; everything left must be bit-identical.
func stripWall(s Summary) Summary {
	s.WallSeconds = 0
	s.Workers = 0
	for i := range s.Results {
		s.Results[i].WallSeconds = 0
	}
	return s
}

// TestSweepDeterministicAcrossWorkerCounts: the full summary — stats,
// cycle and event counts, and the per-job start times of every
// experiment — must be byte-identical whether the grid runs on 1, 4
// or 8 workers. Combined with `go test -cpu 1,4,8`, this pins the
// requirement that parallel execution never changes a scheduling
// decision.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	grid := Grid{
		Seeds: []int64{1, 2},
		Jobs:  300,
		Nodes: 4,
		// Contended traces exercise shrinks, backfills and skips.
		MeanInterarrival: 25,
		KeepJobs:         true,
	}
	var base Summary
	var baseStarts string
	for i, workers := range []int{1, 4, 8} {
		sum, err := Run(grid, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		starts := sum.StartsListing()
		if i == 0 {
			base, baseStarts = stripWall(sum), starts
			continue
		}
		got := stripWall(sum)
		a, _ := json.Marshal(base)
		b, _ := json.Marshal(got)
		if !bytes.Equal(a, b) {
			t.Errorf("workers=%d summary differs from sequential:\n%s\nvs\n%s", workers, b, a)
		}
		if starts != baseStarts {
			t.Errorf("workers=%d per-job start times differ from sequential", workers)
		}
	}
}

// TestSweepMatchesGoldenTrace: a 1-worker sweep over the seeded
// 1000-job golden trace must reproduce exactly the committed golden
// start times of the decision test — the sweep engine adds no
// scheduling behavior of its own.
func TestSweepMatchesGoldenTrace(t *testing.T) {
	sum, err := Run(Grid{Seeds: []int64{1}, Jobs: 1000, Nodes: 4, KeepJobs: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "workload", "testdata", "sched_starts_seed1_1000.golden"))
	if err != nil {
		t.Fatal(err)
	}
	got := sum.StartsListing()
	if got != string(want) {
		gl := strings.Split(got, "\n")
		wl := strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("sweep start times diverge from golden at line %d:\n  got  %q\n  want %q", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("listing length changed: got %d lines, want %d", len(gl), len(wl))
	}
}

// TestSweepStreamMatchesMaterialized: the streaming sweep must agree
// with the materialized sweep on every deterministic aggregate.
func TestSweepStreamMatchesMaterialized(t *testing.T) {
	base := Grid{Seeds: []int64{3}, Jobs: 500, Nodes: 4}
	mat, err := Run(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := base
	st.Stream = true
	str, err := Run(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mat.Results {
		m, s := mat.Results[i], str.Results[i]
		if m.Jobs != s.Jobs || m.Cycles != s.Cycles {
			t.Errorf("%s: stream jobs/cycles %d/%d vs materialized %d/%d",
				m.Policy, s.Jobs, s.Cycles, m.Jobs, m.Cycles)
		}
		if m.Stats.Makespan != s.Stats.Makespan || m.Stats.MeanWait != s.Stats.MeanWait ||
			m.Stats.MeanResponse != s.Stats.MeanResponse {
			t.Errorf("%s: stream stats %+v vs materialized %+v", m.Policy, s.Stats, m.Stats)
		}
	}
}

// TestParseGrid covers the spec format.
func TestParseGrid(t *testing.T) {
	g, err := ParseGrid("policies=fcfs,easy;seeds=1,3-5;jobs=2000;nodes=8;ia=45;stream=1")
	if err != nil {
		t.Fatal(err)
	}
	want := Grid{
		Policies:         []string{"fcfs", "easy"},
		Seeds:            []int64{1, 3, 4, 5},
		Jobs:             2000,
		Nodes:            8,
		MeanInterarrival: 45,
		Stream:           true,
	}
	if !reflect.DeepEqual(g, want) {
		t.Errorf("ParseGrid = %+v, want %+v", g, want)
	}
	if _, err := ParseGrid("bogus"); err == nil {
		t.Error("malformed field should fail")
	}
	if _, err := ParseGrid("zzz=1"); err == nil {
		t.Error("unknown key should fail")
	}
	if _, err := ParseGrid("seeds=9-1"); err == nil {
		t.Error("inverted seed range should fail")
	}
	// Whitespace-separated fields and "all" policies.
	g, err = ParseGrid("policies=all seeds=2 jobs=10")
	if err != nil {
		t.Fatal(err)
	}
	if g.Policies != nil || len(g.Seeds) != 1 || g.Seeds[0] != 2 || g.Jobs != 10 {
		t.Errorf("ParseGrid whitespace form = %+v", g)
	}
	// Heterogeneous cluster + fault-rate keys.
	g, err = ParseGrid("policies=fcfs;cluster=hetero;cancel=0.05;fail=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if g.Cluster.String() != hwmodel.HeteroMN3().String() {
		t.Errorf("cluster = %q", g.Cluster)
	}
	if g.CancelRate != 0.05 || g.FailRate != 0.1 {
		t.Errorf("rates = %g/%g", g.CancelRate, g.FailRate)
	}
	if _, err := ParseGrid("cluster=bogus:1"); err == nil {
		t.Error("bad cluster spec should fail")
	}
	if _, err := ParseGrid("cancel=1.5"); err == nil {
		t.Error("out-of-range rate should fail")
	}
}

// TestSweepHeteroFaultGrid runs a small heterogeneous fault grid end
// to end and checks the per-partition split reaches the results.
func TestSweepHeteroFaultGrid(t *testing.T) {
	sum, err := Run(Grid{
		Policies: []string{"malleable-expand"}, Seeds: []int64{1}, Jobs: 120,
		Cluster: hwmodel.HeteroMN3(), CancelRate: 0.1, FailRate: 0.1,
		MeanInterarrival: 25,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := sum.Results[0]
	if r.Stats.Cancelled == 0 && r.Stats.Failed == 0 {
		t.Fatalf("fault grid produced no faults: %+v", r.Stats)
	}
	if len(r.Partitions) != 2 {
		t.Fatalf("partitions = %v, want batch+fat", r.Partitions)
	}
	jobs := 0
	for _, ps := range r.Partitions {
		jobs += ps.Jobs
	}
	if jobs != r.Jobs {
		t.Fatalf("partition split %d != %d jobs", jobs, r.Jobs)
	}
}

// TestSweepOutputFormats smoke-tests the JSON/CSV/table writers.
func TestSweepOutputFormats(t *testing.T) {
	sum, err := Run(Grid{Policies: []string{"fcfs"}, Seeds: []int64{1}, Jobs: 50, Nodes: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var jb bytes.Buffer
	if err := sum.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(jb.Bytes()) {
		t.Error("WriteJSON produced invalid JSON")
	}
	var cb bytes.Buffer
	if err := sum.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(cb.String(), "\n"); lines != 2 {
		t.Errorf("CSV lines = %d, want header + 1 row", lines)
	}
	if table := sum.Table(); !strings.Contains(table, "fcfs") {
		t.Errorf("table missing policy row:\n%s", table)
	}
}
