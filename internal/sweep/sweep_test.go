package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hwmodel"
	"repro/internal/sched"
)

// stripWall zeroes the wall-clock fields, which legitimately vary
// between runs; everything left must be bit-identical.
func stripWall(s Summary) Summary {
	s.WallSeconds = 0
	s.Workers = 0
	for i := range s.Results {
		s.Results[i].WallSeconds = 0
	}
	return s
}

// TestSweepDeterministicAcrossWorkerCounts: the full summary — stats,
// cycle and event counts, and the per-job start times of every
// experiment — must be byte-identical whether the grid runs on 1, 4
// or 8 workers. Combined with `go test -cpu 1,4,8`, this pins the
// requirement that parallel execution never changes a scheduling
// decision.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	grid := Grid{
		Seeds: []int64{1, 2},
		Jobs:  300,
		Nodes: 4,
		// Contended traces exercise shrinks, backfills and skips.
		MeanInterarrival: 25,
		KeepJobs:         true,
	}
	var base Summary
	var baseStarts string
	for i, workers := range []int{1, 4, 8} {
		sum, err := Run(grid, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		starts := sum.StartsListing()
		if i == 0 {
			base, baseStarts = stripWall(sum), starts
			continue
		}
		got := stripWall(sum)
		a, _ := json.Marshal(base)
		b, _ := json.Marshal(got)
		if !bytes.Equal(a, b) {
			t.Errorf("workers=%d summary differs from sequential:\n%s\nvs\n%s", workers, b, a)
		}
		if starts != baseStarts {
			t.Errorf("workers=%d per-job start times differ from sequential", workers)
		}
	}
}

// TestSweepMatchesGoldenTrace: a 1-worker sweep over the seeded
// 1000-job golden trace must reproduce exactly the committed golden
// start times of the decision test — the sweep engine adds no
// scheduling behavior of its own.
func TestSweepMatchesGoldenTrace(t *testing.T) {
	sum, err := Run(Grid{Seeds: []int64{1}, Jobs: 1000, Nodes: 4, KeepJobs: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "workload", "testdata", "sched_starts_seed1_1000.golden"))
	if err != nil {
		t.Fatal(err)
	}
	got := sum.StartsListing()
	if got != string(want) {
		gl := strings.Split(got, "\n")
		wl := strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("sweep start times diverge from golden at line %d:\n  got  %q\n  want %q", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("listing length changed: got %d lines, want %d", len(gl), len(wl))
	}
}

// TestSweepStreamMatchesMaterialized: the streaming sweep must agree
// with the materialized sweep on every deterministic aggregate.
func TestSweepStreamMatchesMaterialized(t *testing.T) {
	base := Grid{Seeds: []int64{3}, Jobs: 500, Nodes: 4}
	mat, err := Run(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := base
	st.Stream = true
	str, err := Run(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mat.Results {
		m, s := mat.Results[i], str.Results[i]
		if m.Jobs != s.Jobs || m.Cycles != s.Cycles {
			t.Errorf("%s: stream jobs/cycles %d/%d vs materialized %d/%d",
				m.Policy, s.Jobs, s.Cycles, m.Jobs, m.Cycles)
		}
		if m.Stats.Makespan != s.Stats.Makespan || m.Stats.MeanWait != s.Stats.MeanWait ||
			m.Stats.MeanResponse != s.Stats.MeanResponse {
			t.Errorf("%s: stream stats %+v vs materialized %+v", m.Policy, s.Stats, m.Stats)
		}
	}
}

// TestParseGrid covers the spec format.
func TestParseGrid(t *testing.T) {
	g, err := ParseGrid("policies=fcfs,easy;seeds=1,3-5;jobs=2000;nodes=8;ia=45;stream=1")
	if err != nil {
		t.Fatal(err)
	}
	want := Grid{
		Policies:         []string{"fcfs", "easy"},
		Seeds:            []int64{1, 3, 4, 5},
		Jobs:             2000,
		Nodes:            8,
		MeanInterarrival: 45,
		Stream:           true,
	}
	if !reflect.DeepEqual(g, want) {
		t.Errorf("ParseGrid = %+v, want %+v", g, want)
	}
	if _, err := ParseGrid("bogus"); err == nil {
		t.Error("malformed field should fail")
	}
	if _, err := ParseGrid("zzz=1"); err == nil {
		t.Error("unknown key should fail")
	}
	if _, err := ParseGrid("seeds=9-1"); err == nil {
		t.Error("inverted seed range should fail")
	}
	// Whitespace-separated fields; "all" expands eagerly so it still
	// counts when combined with sched= cells below.
	g, err = ParseGrid("policies=all seeds=2 jobs=10")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Policies, sched.Names()) || len(g.Seeds) != 1 || g.Seeds[0] != 2 || g.Jobs != 10 {
		t.Errorf("ParseGrid whitespace form = %+v", g)
	}
	g, err = ParseGrid("policies=all;sched=batch=easy,fat=fcfs")
	if err != nil {
		t.Fatal(err)
	}
	if want := append(append([]string{}, sched.Names()...), "batch=easy,fat=fcfs"); !reflect.DeepEqual(g.Policies, want) {
		t.Errorf("all + sched cell = %v, want %v", g.Policies, want)
	}
	// Heterogeneous cluster + fault-rate keys.
	g, err = ParseGrid("policies=fcfs;cluster=hetero;cancel=0.05;fail=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if g.Cluster.String() != hwmodel.HeteroMN3().String() {
		t.Errorf("cluster = %q", g.Cluster)
	}
	if g.CancelRate != 0.05 || g.FailRate != 0.1 {
		t.Errorf("rates = %g/%g", g.CancelRate, g.FailRate)
	}
	if _, err := ParseGrid("cluster=bogus:1"); err == nil {
		t.Error("bad cluster spec should fail")
	}
	if _, err := ParseGrid("cancel=1.5"); err == nil {
		t.Error("out-of-range rate should fail")
	}
	// Policy-set cells (sched=, repeatable) and the spillover knobs.
	g, err = ParseGrid("sched=batch=easy,fat=malleable-shrink;sched=easy;cluster=hetero;spill=1;spillafter=30;spilldepth=2")
	if err != nil {
		t.Fatal(err)
	}
	want2 := []string{"batch=easy,fat=malleable-shrink", "easy"}
	if !reflect.DeepEqual(g.Policies, want2) {
		t.Errorf("sched cells = %v, want %v", g.Policies, want2)
	}
	if !g.Spill || g.SpillAfter != 30 || g.SpillDepth != 2 {
		t.Errorf("spill knobs = %v/%g/%d", g.Spill, g.SpillAfter, g.SpillDepth)
	}
	if _, err := ParseGrid("sched=batch=bogus"); err == nil {
		t.Error("bad policy set should fail")
	}
	if _, err := ParseGrid("spillafter=-1"); err == nil {
		t.Error("negative spillafter should fail")
	}
	if _, err := ParseGrid("spilldepth=x"); err == nil {
		t.Error("non-numeric spilldepth should fail")
	}
	// Node fault-injection keys. The script value rides a single grid
	// field, so its entries use '+' — ';' belongs to the grid grammar.
	g, err = ParseGrid("nodefaults=node0:down@10..20+node1:drain@30..40;mtbf=5000;mttr=600;requeue=2")
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeFaults != "node0:down@10..20+node1:drain@30..40" ||
		g.MTBF != 5000 || g.MTTR != 600 || g.MaxRequeues != 2 {
		t.Errorf("fault knobs = %q/%g/%g/%d", g.NodeFaults, g.MTBF, g.MTTR, g.MaxRequeues)
	}
	if _, err := ParseGrid("mtbf=-1"); err == nil {
		t.Error("negative mtbf should fail")
	}
	if _, err := ParseGrid("mttr=x"); err == nil {
		t.Error("non-numeric mttr should fail")
	}
	if _, err := ParseGrid("requeue=x"); err == nil {
		t.Error("non-numeric requeue should fail")
	}
}

// TestSweepSpilloverDeterministicAcrossWorkerCounts: a heterogeneous
// grid mixing per-partition policy sets with single policies, with
// spillover on, must produce byte-identical summaries at any worker
// count (this is the grid CI also runs under -race at -cpu 1,4,8).
func TestSweepSpilloverDeterministicAcrossWorkerCounts(t *testing.T) {
	grid := Grid{
		Policies:         []string{"easy", "batch=easy,fat=malleable-shrink"},
		Seeds:            []int64{1},
		Jobs:             300,
		Cluster:          hwmodel.HeteroMN3(),
		MeanInterarrival: 20,
		Spill:            true,
		KeepJobs:         true,
	}
	var base Summary
	var baseStarts string
	for i, workers := range []int{1, 4, 8} {
		sum, err := Run(grid, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, r := range sum.Results {
			if r.Stats.Spilled == 0 {
				t.Errorf("workers=%d %s: no spills on the contended hetero trace", workers, r.Policy)
			}
		}
		starts := sum.StartsListing()
		if i == 0 {
			base, baseStarts = stripWall(sum), starts
			continue
		}
		got := stripWall(sum)
		a, _ := json.Marshal(base)
		b, _ := json.Marshal(got)
		if !bytes.Equal(a, b) {
			t.Errorf("workers=%d spillover summary differs from sequential:\n%s\nvs\n%s", workers, b, a)
		}
		if starts != baseStarts {
			t.Errorf("workers=%d spillover per-job start times differ from sequential", workers)
		}
	}
}

// TestSweepNodeFaultDeterministicAcrossWorkerCounts: a heterogeneous
// grid with scripted outages, a seeded background fault stream and the
// controller's invariant checks on must produce byte-identical
// summaries — including the requeue and node-failed tallies — at any
// worker count. Each experiment's fault stream is seeded from its own
// trace seed, so parallel workers share no RNG state. CI also runs
// this under -race at -cpu 1,4,8: degraded-capacity accounting must
// hold under every interleaving of the worker pool.
func TestSweepNodeFaultDeterministicAcrossWorkerCounts(t *testing.T) {
	grid := Grid{
		Policies:         []string{"easy", "malleable-expand"},
		Seeds:            []int64{1, 2},
		Jobs:             250,
		Cluster:          hwmodel.HeteroMN3(),
		MeanInterarrival: 20,
		NodeFaults:       "node0:down@1500..2300+node4:down@2000..3500+node2:drain@4000..6000",
		MTBF:             4000,
		MTTR:             700,
		MaxRequeues:      1,
		KeepJobs:         true,
		DebugInvariants:  true,
	}
	var base Summary
	var baseStarts string
	for i, workers := range []int{1, 4, 8} {
		sum, err := Run(grid, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requeues := 0
		for _, r := range sum.Results {
			requeues += r.Stats.Requeues
		}
		if requeues == 0 {
			t.Errorf("workers=%d: no requeues on the faulted grid; the check is vacuous", workers)
		}
		starts := sum.StartsListing()
		if i == 0 {
			base, baseStarts = stripWall(sum), starts
			continue
		}
		got := stripWall(sum)
		a, _ := json.Marshal(base)
		b, _ := json.Marshal(got)
		if !bytes.Equal(a, b) {
			t.Errorf("workers=%d node-fault summary differs from sequential:\n%s\nvs\n%s", workers, b, a)
		}
		if starts != baseStarts {
			t.Errorf("workers=%d node-fault per-job start times differ from sequential", workers)
		}
	}
}

// TestSweepHeteroFaultGrid runs a small heterogeneous fault grid end
// to end and checks the per-partition split reaches the results.
func TestSweepHeteroFaultGrid(t *testing.T) {
	sum, err := Run(Grid{
		Policies: []string{"malleable-expand"}, Seeds: []int64{1}, Jobs: 120,
		Cluster: hwmodel.HeteroMN3(), CancelRate: 0.1, FailRate: 0.1,
		MeanInterarrival: 25,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := sum.Results[0]
	if r.Stats.Cancelled == 0 && r.Stats.Failed == 0 {
		t.Fatalf("fault grid produced no faults: %+v", r.Stats)
	}
	if len(r.Partitions) != 2 {
		t.Fatalf("partitions = %v, want batch+fat", r.Partitions)
	}
	jobs := 0
	for _, ps := range r.Partitions {
		jobs += ps.Jobs
	}
	if jobs != r.Jobs {
		t.Fatalf("partition split %d != %d jobs", jobs, r.Jobs)
	}
}

// TestSweepOutputFormats smoke-tests the JSON/CSV/table writers.
func TestSweepOutputFormats(t *testing.T) {
	sum, err := Run(Grid{Policies: []string{"fcfs"}, Seeds: []int64{1}, Jobs: 50, Nodes: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var jb bytes.Buffer
	if err := sum.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(jb.Bytes()) {
		t.Error("WriteJSON produced invalid JSON")
	}
	var cb bytes.Buffer
	if err := sum.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(cb.String(), "\n"); lines != 2 {
		t.Errorf("CSV lines = %d, want header + 1 row", lines)
	}
	if table := sum.Table(); !strings.Contains(table, "fcfs") {
		t.Errorf("table missing policy row:\n%s", table)
	}
}
