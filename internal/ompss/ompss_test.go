package ompss

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpuset"
	"repro/internal/dlbcore"
	"repro/internal/shmem"
)

func TestSubmitAndWait(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	var n atomic.Int32
	for i := 0; i < 100; i++ {
		rt.Submit(func() { n.Add(1) })
	}
	rt.TaskWait()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks", n.Load())
	}
	if rt.TasksRun() != 100 {
		t.Errorf("TasksRun = %d", rt.TasksRun())
	}
}

func TestTaskWaitOnEmptyRuntime(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	done := make(chan struct{})
	go func() {
		rt.TaskWait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("TaskWait on empty runtime blocked")
	}
}

func TestOutInDependency(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	var order []string
	var mu sync.Mutex
	log := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	rt.Submit(func() {
		time.Sleep(10 * time.Millisecond)
		log("write")
	}, Dep{"x", Out})
	rt.Submit(func() { log("read1") }, Dep{"x", In})
	rt.Submit(func() { log("read2") }, Dep{"x", In})
	rt.TaskWait()
	if len(order) != 3 || order[0] != "write" {
		t.Fatalf("order = %v", order)
	}
}

func TestWriteAfterReadDependency(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	var readsDone atomic.Int32
	var writerSawReads atomic.Bool
	for i := 0; i < 3; i++ {
		rt.Submit(func() {
			time.Sleep(5 * time.Millisecond)
			readsDone.Add(1)
		}, Dep{"x", In})
	}
	rt.Submit(func() {
		writerSawReads.Store(readsDone.Load() == 3)
	}, Dep{"x", InOut})
	rt.TaskWait()
	if !writerSawReads.Load() {
		t.Fatal("writer ran before all readers finished")
	}
}

func TestWriteAfterWriteChain(t *testing.T) {
	rt := New(8)
	defer rt.Shutdown()
	var val int32
	var vals []int32
	var mu sync.Mutex
	for i := int32(1); i <= 5; i++ {
		i := i
		rt.Submit(func() {
			atomic.StoreInt32(&val, i)
			mu.Lock()
			vals = append(vals, i)
			mu.Unlock()
		}, Dep{"v", InOut})
	}
	rt.TaskWait()
	for i, v := range vals {
		if v != int32(i+1) {
			t.Fatalf("writes out of order: %v", vals)
		}
	}
}

func TestIndependentTasksRunConcurrently(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	var running atomic.Int32
	var maxSeen atomic.Int32
	for i := 0; i < 4; i++ {
		rt.Submit(func() {
			cur := running.Add(1)
			for {
				m := maxSeen.Load()
				if cur <= m || maxSeen.CompareAndSwap(m, cur) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			running.Add(-1)
		})
	}
	rt.TaskWait()
	if maxSeen.Load() < 2 {
		t.Errorf("max concurrency = %d, want >= 2", maxSeen.Load())
	}
}

func TestDiamondDependency(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	var trace []string
	var mu sync.Mutex
	log := func(s string) {
		mu.Lock()
		trace = append(trace, s)
		mu.Unlock()
	}
	rt.Submit(func() { log("a") }, Dep{"a", Out})
	rt.Submit(func() { log("b") }, Dep{"a", In}, Dep{"b", Out})
	rt.Submit(func() { log("c") }, Dep{"a", In}, Dep{"c", Out})
	rt.Submit(func() { log("d") }, Dep{"b", In}, Dep{"c", In})
	rt.TaskWait()
	pos := map[string]int{}
	for i, s := range trace {
		pos[s] = i
	}
	if pos["a"] > pos["b"] || pos["a"] > pos["c"] || pos["b"] > pos["d"] || pos["c"] > pos["d"] {
		t.Fatalf("diamond order violated: %v", trace)
	}
}

func TestPriorityOrdering(t *testing.T) {
	rt := New(1) // single worker: strict execution order
	defer rt.Shutdown()
	var mu sync.Mutex
	var order []int
	log := func(v int) {
		mu.Lock()
		order = append(order, v)
		mu.Unlock()
	}
	// Block the worker so all submissions land in the ready queue.
	gate := make(chan struct{})
	rt.Submit(func() { <-gate })
	rt.SubmitPriority(func() { log(1) }, 0)
	rt.SubmitPriority(func() { log(2) }, 5)
	rt.SubmitPriority(func() { log(3) }, 5)
	rt.SubmitPriority(func() { log(4) }, 9)
	close(gate)
	rt.TaskWait()
	want := []int{4, 2, 3, 1} // priority desc, FIFO within priority
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPriorityNeverOverridesDependencies(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	var mu sync.Mutex
	var order []string
	log := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	rt.SubmitPriority(func() {
		time.Sleep(5 * time.Millisecond)
		log("producer")
	}, 0, Dep{"x", Out})
	rt.SubmitPriority(func() { log("consumer") }, 100, Dep{"x", In})
	rt.TaskWait()
	if len(order) != 2 || order[0] != "producer" {
		t.Fatalf("order = %v", order)
	}
}

func TestTaskLoopCoversRange(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	const n = 103
	hits := make([]atomic.Int32, n)
	rt.TaskLoop(n, 10, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	rt.TaskWait()
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("iteration %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestTaskLoopDefaults(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	var tasks atomic.Int32
	rt.TaskLoop(100, 0, func(lo, hi int) { tasks.Add(1) })
	rt.TaskWait()
	if tasks.Load() != 4 { // one task per worker
		t.Errorf("tasks = %d, want 4", tasks.Load())
	}
	// Empty range is a no-op.
	rt.TaskLoop(0, 10, func(lo, hi int) { t.Error("body ran for n=0") })
	rt.TaskWait()
}

func TestTaskLoopWithDependencies(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	var produced atomic.Bool
	rt.Submit(func() {
		time.Sleep(5 * time.Millisecond)
		produced.Store(true)
	}, Dep{"data", Out})
	var violations atomic.Int32
	rt.TaskLoop(40, 5, func(lo, hi int) {
		if !produced.Load() {
			violations.Add(1)
		}
	}, Dep{"data", In})
	rt.TaskWait()
	if violations.Load() != 0 {
		t.Errorf("%d taskloop chunks ran before the producer", violations.Load())
	}
}

func TestPoolResize(t *testing.T) {
	rt := New(8)
	defer rt.Shutdown()
	rt.SetNumWorkers(2)
	// Excess workers exit once idle.
	deadline := time.After(2 * time.Second)
	for rt.ActiveWorkers() > 2 {
		select {
		case <-deadline:
			t.Fatalf("pool did not shrink: %d active", rt.ActiveWorkers())
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	rt.SetNumWorkers(6)
	if rt.NumWorkers() != 6 {
		t.Errorf("NumWorkers = %d", rt.NumWorkers())
	}
	var n atomic.Int32
	for i := 0; i < 50; i++ {
		rt.Submit(func() { n.Add(1) })
	}
	rt.TaskWait()
	if n.Load() != 50 {
		t.Fatalf("after resize ran %d tasks", n.Load())
	}
}

func TestSetNumWorkersClamps(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	rt.SetNumWorkers(0)
	if rt.NumWorkers() != 1 {
		t.Errorf("NumWorkers = %d, want clamp to 1", rt.NumWorkers())
	}
}

func TestShutdownStopsWorkers(t *testing.T) {
	rt := New(4)
	var n atomic.Int32
	for i := 0; i < 10; i++ {
		rt.Submit(func() { n.Add(1) })
	}
	rt.Shutdown()
	if n.Load() != 10 {
		t.Fatalf("Shutdown lost tasks: %d", n.Load())
	}
	if rt.ActiveWorkers() != 0 {
		t.Errorf("workers alive after Shutdown: %d", rt.ActiveWorkers())
	}
}

func TestSubmitAfterShutdownPanics(t *testing.T) {
	rt := New(1)
	rt.Shutdown()
	defer func() {
		if recover() == nil {
			t.Error("Submit after Shutdown should panic")
		}
	}()
	rt.Submit(func() {})
}

// TestDLBTaskGranularityShrink: an admin shrinks the process; the pool
// follows at a task boundary, not at the end of the whole task batch.
func TestDLBTaskGranularityShrink(t *testing.T) {
	reg := shmem.NewRegistry()
	sys := core.NewSystem(reg.MustOpen("node0", cpuset.Range(0, 7), 0))
	ctx, code := dlbcore.Init(sys, 1, cpuset.Range(0, 7), dlbcore.Options{DROM: true})
	if code.IsError() {
		t.Fatal(code)
	}
	defer ctx.Finalize()

	rt := New(8)
	defer rt.Shutdown()
	AttachDLB(rt, ctx)

	admin, _ := sys.Attach()

	release := make(chan struct{})
	var started atomic.Int32
	// First wave occupies the workers.
	for i := 0; i < 8; i++ {
		rt.Submit(func() {
			started.Add(1)
			<-release
		})
	}
	for started.Load() < 8 {
		time.Sleep(time.Millisecond)
	}
	// Admin shrinks to 2 CPUs while tasks are in flight.
	if c := admin.SetProcessMask(1, cpuset.Range(0, 1), core.FlagNone); c.IsError() {
		t.Fatal(c)
	}
	close(release)
	rt.TaskWait()

	// Workers polled at the task boundary and the pool shrank.
	deadline := time.After(2 * time.Second)
	for rt.NumWorkers() != 2 || rt.ActiveWorkers() > 2 {
		select {
		case <-deadline:
			t.Fatalf("pool did not follow DROM shrink: wanted=%d active=%d",
				rt.NumWorkers(), rt.ActiveWorkers())
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func BenchmarkTaskThroughput(b *testing.B) {
	rt := New(4)
	defer rt.Shutdown()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Submit(func() {})
	}
	rt.TaskWait()
}

func BenchmarkDependencyChain(b *testing.B) {
	rt := New(4)
	defer rt.Shutdown()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Submit(func() {}, Dep{"x", InOut})
	}
	rt.TaskWait()
}
