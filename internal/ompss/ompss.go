// Package ompss implements an OmpSs-like task-based runtime (§4.2):
// tasks with data dependencies executed by a resizable worker pool.
// Like BSC's Nanos runtime, it has native DLB support — when a DLB
// context is attached, every task boundary is a malleability point, so
// DROM mask changes take effect with task granularity (finer than the
// OpenMP runtime's region granularity).
package ompss

import (
	"fmt"
	"sync"

	"repro/internal/dlbcore"
)

// AccessMode describes how a task accesses a dependency object.
type AccessMode int

const (
	// In declares a read-only access (depend(in:)).
	In AccessMode = iota
	// Out declares a write-only access (depend(out:)).
	Out
	// InOut declares a read-write access (depend(inout:)).
	InOut
)

func (m AccessMode) reads() bool  { return m == In || m == InOut }
func (m AccessMode) writes() bool { return m == Out || m == InOut }

// Dep names a dependency object and the access mode.
type Dep struct {
	Name string
	Mode AccessMode
}

// task is a scheduled unit of work.
type task struct {
	fn        func()
	priority  int
	seq       int64
	waitCount int
	succs     []*task
	done      bool
}

// depNode tracks the last writer and the readers-since-last-write of
// one dependency object.
type depNode struct {
	lastWriter *task
	readers    []*task
}

// Runtime is an OmpSs-like runtime instance.
type Runtime struct {
	mu   sync.Mutex
	cond *sync.Cond

	ready   readyQueue
	pending int
	taskSeq int64
	deps    map[string]*depNode

	workersWanted int
	activeIDs     map[int]bool
	shutdown      bool

	dlb *dlbcore.Context

	// stats
	tasksRun  int64
	taskPolls int64
}

// New creates a runtime with the given number of workers.
func New(workers int) *Runtime {
	if workers < 1 {
		workers = 1
	}
	rt := &Runtime{
		deps:          make(map[string]*depNode),
		workersWanted: workers,
		activeIDs:     make(map[int]bool),
	}
	rt.cond = sync.NewCond(&rt.mu)
	rt.mu.Lock()
	rt.spawnLocked()
	rt.mu.Unlock()
	return rt
}

// AttachDLB wires a DLB context: mask changes resize the worker pool,
// and workers poll DROM between tasks.
func AttachDLB(rt *Runtime, ctx *dlbcore.Context) {
	ctx.SetCallbacks(dlbcore.Callbacks{
		SetNumThreads: rt.SetNumWorkers,
	})
	rt.mu.Lock()
	rt.dlb = ctx
	rt.mu.Unlock()
}

// SetNumWorkers resizes the worker pool. Growth spawns workers
// immediately; shrink takes effect as soon as excess workers finish
// their current task (threads are never interrupted mid-task).
func (rt *Runtime) SetNumWorkers(n int) {
	if n < 1 {
		n = 1
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.workersWanted = n
	rt.spawnLocked()
	rt.cond.Broadcast()
}

// NumWorkers returns the target worker count.
func (rt *Runtime) NumWorkers() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.workersWanted
}

// ActiveWorkers returns how many workers currently exist (may lag the
// target while excess workers finish tasks).
func (rt *Runtime) ActiveWorkers() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.activeIDs)
}

// TasksRun returns how many tasks have completed.
func (rt *Runtime) TasksRun() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.tasksRun
}

// spawnLocked tops the pool up to workersWanted. Caller holds rt.mu.
func (rt *Runtime) spawnLocked() {
	if rt.shutdown {
		return
	}
	for id := 0; id < rt.workersWanted; id++ {
		if !rt.activeIDs[id] {
			rt.activeIDs[id] = true
			go rt.worker(id)
		}
	}
}

// Submit schedules fn with the given dependencies (#pragma omp task
// depend(...)). Dependency semantics: a reader waits for the previous
// writer; a writer waits for the previous writer and all readers since.
func (rt *Runtime) Submit(fn func(), deps ...Dep) {
	rt.SubmitPriority(fn, 0, deps...)
}

// SubmitPriority is Submit with an OmpSs-style priority clause: among
// ready tasks, higher priorities run first (FIFO within a priority).
// Priorities are hints — they never override dependencies.
func (rt *Runtime) SubmitPriority(fn func(), priority int, deps ...Dep) {
	t := &task{fn: fn, priority: priority}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.taskSeq++
	t.seq = rt.taskSeq
	if rt.shutdown {
		panic("ompss: Submit after Shutdown")
	}
	rt.pending++
	for _, d := range deps {
		node := rt.deps[d.Name]
		if node == nil {
			node = &depNode{}
			rt.deps[d.Name] = node
		}
		addEdge := func(pred *task) {
			if pred == nil || pred.done || pred == t {
				return
			}
			pred.succs = append(pred.succs, t)
			t.waitCount++
		}
		if d.Mode.reads() {
			addEdge(node.lastWriter)
		}
		if d.Mode.writes() {
			addEdge(node.lastWriter)
			for _, r := range node.readers {
				addEdge(r)
			}
			node.lastWriter = t
			node.readers = nil
		} else {
			node.readers = append(node.readers, t)
		}
	}
	if t.waitCount == 0 {
		rt.ready.push(t)
		rt.cond.Signal()
	}
}

// readyQueue orders runnable tasks by (priority desc, seq asc).
// Linear insertion keeps it simple; queues stay short because workers
// drain eagerly.
type readyQueue []*task

func (q *readyQueue) push(t *task) {
	i := len(*q)
	for i > 0 {
		p := (*q)[i-1]
		if p.priority > t.priority || (p.priority == t.priority && p.seq < t.seq) {
			break
		}
		i--
	}
	*q = append(*q, nil)
	copy((*q)[i+1:], (*q)[i:])
	(*q)[i] = t
}

func (q *readyQueue) pop() *task {
	t := (*q)[0]
	*q = (*q)[1:]
	return t
}

// worker is the body of one pool thread.
func (rt *Runtime) worker(id int) {
	for {
		rt.mu.Lock()
		for {
			if rt.shutdown || id >= rt.workersWanted {
				delete(rt.activeIDs, id)
				rt.cond.Broadcast()
				rt.mu.Unlock()
				return
			}
			if len(rt.ready) > 0 {
				break
			}
			rt.cond.Wait()
		}
		t := rt.ready.pop()
		dlb := rt.dlb
		rt.mu.Unlock()

		t.fn()

		rt.mu.Lock()
		t.done = true
		rt.tasksRun++
		for _, s := range t.succs {
			s.waitCount--
			if s.waitCount == 0 {
				rt.ready.push(s)
				rt.cond.Signal()
			}
		}
		rt.pending--
		if rt.pending == 0 {
			rt.cond.Broadcast()
		}
		if dlb != nil {
			rt.taskPolls++
		}
		rt.mu.Unlock()

		// Task boundary = DLB malleability point (§4.2). PollDROM may
		// call back into SetNumWorkers; do it outside the lock.
		if dlb != nil {
			dlb.PollDROM()
		}
	}
}

// TaskLoop partitions the iteration space [0, n) into tasks of at most
// grainsize iterations and submits them (#pragma omp taskloop
// grainsize(...)). grainsize <= 0 picks one task per worker. All tasks
// share the given dependencies.
func (rt *Runtime) TaskLoop(n, grainsize int, body func(lo, hi int), deps ...Dep) {
	if n <= 0 {
		return
	}
	if grainsize <= 0 {
		workers := rt.NumWorkers()
		grainsize = (n + workers - 1) / workers
	}
	for lo := 0; lo < n; lo += grainsize {
		hi := lo + grainsize
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		rt.Submit(func() { body(lo, hi) }, deps...)
	}
}

// TaskWait blocks until every submitted task has completed
// (#pragma omp taskwait).
func (rt *Runtime) TaskWait() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for rt.pending > 0 {
		rt.cond.Wait()
	}
	// A taskwait is a natural dependency barrier: later tasks cannot
	// conflict with completed ones, so drop the graph bookkeeping.
	rt.deps = make(map[string]*depNode)
}

// Shutdown waits for completion and stops all workers. The runtime
// cannot be reused afterwards.
func (rt *Runtime) Shutdown() {
	rt.TaskWait()
	rt.mu.Lock()
	rt.shutdown = true
	rt.cond.Broadcast()
	for len(rt.activeIDs) > 0 {
		rt.cond.Wait()
	}
	rt.mu.Unlock()
}

func (rt *Runtime) String() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return fmt.Sprintf("ompss.Runtime(workers=%d active=%d pending=%d)",
		rt.workersWanted, len(rt.activeIDs), rt.pending)
}
