// Package cluster is the public simulation API: it exposes the
// DROM-enabled SLURM cluster simulator used to reproduce the paper's
// evaluation (§6). Users describe jobs (application model +
// configuration + submit time), pick a scheduling policy, and get the
// paper's system metrics back: total run time, per-job response times,
// averages, and optionally per-thread traces.
package cluster

import (
	"io"

	"repro/internal/apps"
	"repro/internal/djsb"
	"repro/internal/hwmodel"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/slurm"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config is an application configuration (MPI ranks × threads/rank).
type Config = apps.Config

// AppSpec is a calibrated application performance model.
type AppSpec = apps.Spec

// Application model constructors (Table 1 applications).
var (
	// NEST returns the NEST neuro-simulator model.
	NEST = apps.NEST
	// CoreNeuron returns the CoreNeuron simulator model.
	CoreNeuron = apps.CoreNeuron
	// Pils returns the compute-bound synthetic analytics model.
	Pils = apps.Pils
	// STREAM returns the memory-bandwidth benchmark model.
	STREAM = apps.STREAM
)

// Table1 returns the paper's configurations for an application name
// ("nest", "coreneuron", "pils", "stream").
func Table1(app string) []Config { return apps.Table1(app) }

// Job is one submission: name, model, configuration, node count,
// priority and malleability.
type Job = slurm.Job

// Policy selects the scheduling behaviour.
type Policy = slurm.Policy

// Scheduling policies.
const (
	// Serial is the baseline: exclusive nodes, jobs wait in queue.
	Serial = slurm.PolicySerial
	// DROM co-allocates jobs by repartitioning CPUs through DROM.
	DROM = slurm.PolicyDROM
	// Oversubscribe co-allocates with overlapping masks (the
	// related-work baseline DROM beats).
	Oversubscribe = slurm.PolicyOversubscribe
	// Preempt checkpoints and requeues lower-priority jobs (the other
	// §6.2 baseline, with checkpoint/restart costs).
	Preempt = slurm.PolicyPreempt
)

// Submission schedules a job at a virtual time.
type Submission = workload.Submission

// Scenario is a workload description.
type Scenario = workload.Scenario

// Partitioned heterogeneous clusters (hwmodel): Scenario.Cluster,
// SWFOptions.Cluster and SyntheticSWF.Cluster accept a ClusterSpec;
// jobs target a partition by name through Job.Partition.

// ClusterSpec is a partitioned cluster layout: named partitions, each
// a homogeneous pool of one machine type.
type ClusterSpec = hwmodel.ClusterSpec

// MachinePartition is one named homogeneous partition of a cluster.
type MachinePartition = hwmodel.Partition

// ParseCluster parses the compact cluster-spec grammar, e.g.
// "batch:4xmn3,fat:2xfat" or the "hetero" preset shorthand.
func ParseCluster(spec string) (ClusterSpec, error) { return hwmodel.ParseCluster(spec) }

// HeteroMN3 returns the bundled 2-partition heterogeneous preset:
// 4 MN3 nodes ("batch") plus 2 fat nodes ("fat").
func HeteroMN3() ClusterSpec { return hwmodel.HeteroMN3() }

// PartitionStat is one partition's slice of a run's metrics.
type PartitionStat = metrics.PartitionStat

// Result is one scenario execution: records and optional traces.
type Result = workload.Result

// JobRecord is one job's lifecycle (submit/start/end).
type JobRecord = metrics.JobRecord

// Workload aggregates job records (total run time, average response).
type Workload = metrics.Workload

// Tracer records per-thread execution segments.
type Tracer = trace.Tracer

// Probe receives scheduler observability events (see internal/obs).
// Attach one via Scenario.Probe; a nil probe costs one nil check per
// instrumentation point.
type Probe = obs.Probe

// ObsEvent is one observability event delivered to a Probe.
type ObsEvent = obs.Event

// Machine describes a node type (sockets, cores, frequency, memory
// bandwidth). The zero value in a Scenario selects MN3.
type Machine = hwmodel.Machine

// MN3 returns the MareNostrum III node model of the paper (2 sockets ×
// 8 cores at 2.6 GHz).
func MN3() Machine { return hwmodel.MN3() }

// Run executes a scenario under the given policy on a 2-socket,
// 16-core-per-node MN3-like cluster.
func Run(s Scenario, p Policy) Result { return workload.Run(s, p) }

// Compare runs a scenario under Serial and DROM.
func Compare(s Scenario) (serial, drom Result) { return workload.Compare(s) }

// Repeated aggregates n jittered runs (mean totals, coefficient of
// variation), matching the paper's ≥3-run measurement methodology.
type Repeated = workload.Repeated

// RunN executes the scenario n times with seeds 1..n and the given
// relative jitter, returning aggregate statistics.
func RunN(s Scenario, p Policy, n int, jitterFrac float64) (Repeated, error) {
	return workload.RunN(s, p, n, jitterFrac)
}

// UC1 builds the paper's in-situ analytics scenario (§6.1): a
// simulation ("nest" or "coreneuron") submitted at t=0 and an
// analytics job ("pils" or "stream") at t=300.
func UC1(sim string, simCfg Config, ana string, anaCfg Config, traced bool) Scenario {
	return workload.UC1(sim, simCfg, ana, anaCfg, traced)
}

// UC2 builds the paper's high-priority job scenario (§6.2).
func UC2(traced bool) Scenario { return workload.UC2(traced) }

// Gain returns the relative improvement of b over a: (a-b)/a.
func Gain(a, b float64) float64 { return metrics.Gain(a, b) }

// DJSBParams configures a randomized DJSB-style job stream (after the
// Dynamic Job Scheduling Benchmark the paper cites as [26]).
type DJSBParams = djsb.Params

// DJSBReport summarizes a stream run (makespan, response, slowdown).
type DJSBReport = djsb.Report

// DJSBMix is one entry of the application mixture.
type DJSBMix = djsb.AppMix

// GenerateDJSB builds a reproducible randomized scenario.
func GenerateDJSB(p DJSBParams) (Scenario, error) { return djsb.Generate(p) }

// RunDJSB generates and runs a stream under a policy.
func RunDJSB(p DJSBParams, pol Policy) (DJSBReport, error) { return djsb.Run(p, pol) }

// SummarizeDJSB computes the stream report from any finished result.
func SummarizeDJSB(res Result) DJSBReport { return djsb.Summarize(res) }

// ---------------------------------------------------------------------
// Scheduling subsystem (internal/sched) and SWF-scale replay
// ---------------------------------------------------------------------

// SchedPolicy is a pluggable queue-ordering/admission policy: fcfs,
// easy (backfill with head reservation), malleable-shrink (shrink
// running jobs through DROM to admit the head) or malleable-expand
// (additionally re-grow jobs once the queue drains).
type SchedPolicy = sched.Policy

// NewSchedPolicy resolves a policy by name (see sched.New for the
// accepted aliases).
func NewSchedPolicy(name string) (SchedPolicy, error) { return sched.New(name) }

// SchedPolicyNames lists the canonical policy names.
func SchedPolicyNames() []string { return sched.Names() }

// SchedPolicySet assigns a policy to each partition, parsed from the
// `-sched` grammar: a bare policy name ("easy", the set's default)
// and/or partition=policy pairs ("batch=easy,fat=malleable-shrink").
type SchedPolicySet = sched.PolicySet

// ParseSchedPolicySet parses the policy-set grammar.
func ParseSchedPolicySet(spec string) (SchedPolicySet, error) { return sched.ParsePolicySet(spec) }

// RunSched executes a scenario under a SchedPolicy; every
// malleability action flows through the real DROM protocol.
func RunSched(s Scenario, p SchedPolicy) Result { return workload.RunSched(s, p) }

// RunSchedSet executes a scenario under a per-partition policy set:
// every partition gets a fresh instance of the policy the set assigns
// it.
func RunSchedSet(s Scenario, ps SchedPolicySet) Result { return workload.RunSchedSet(s, ps) }

// SchedStats are the scheduler-quality metrics (makespan, waits,
// bounded slowdown, utilization).
type SchedStats = metrics.SchedStats

// SchedStatsOf computes the metrics of a finished run.
func SchedStatsOf(s Scenario, res Result) SchedStats { return workload.SchedStatsOf(s, res) }

// SWFJob is one Standard Workload Format record.
type SWFJob = workload.SWFJob

// SWFOptions maps a trace onto the simulated cluster.
type SWFOptions = workload.SWFOptions

// ParseSWF reads a Standard Workload Format trace.
func ParseSWF(r io.Reader) ([]SWFJob, error) { return workload.ParseSWF(r) }

// SWFScenario converts trace records into a replayable scenario,
// returning the number of unusable records skipped.
func SWFScenario(jobs []SWFJob, o SWFOptions) (Scenario, int, error) {
	return workload.SWFScenario(jobs, o)
}

// SyntheticSWF parameterizes the seeded trace generator.
type SyntheticSWF = workload.SyntheticSWF

// SyntheticSWFScenario generates a reproducible thousand-job-scale
// workload.
func SyntheticSWFScenario(p SyntheticSWF) (Scenario, error) {
	return workload.SyntheticSWFScenario(p)
}

// SubmissionSource yields submissions in nondecreasing submit order
// (streaming replay input).
type SubmissionSource = workload.SubmissionSource

// NewSWFReaderSource streams an SWF trace file as submissions without
// materializing it.
func NewSWFReaderSource(r io.Reader, o SWFOptions) SubmissionSource {
	return workload.NewSWFReaderSource(r, o)
}

// ParseSWFFunc streams an SWF trace record by record.
func ParseSWFFunc(r io.Reader, fn func(SWFJob) error) error {
	return workload.ParseSWFFunc(r, fn)
}

// RunSchedStream replays a submission stream under a SchedPolicy in
// bounded memory: job records are folded into aggregate statistics as
// they complete (no per-job records, no percentiles). For a stream in
// submit order the scheduling decisions are identical to
// materializing it and calling RunSched; an out-of-order record is
// submitted at the stream position instead of being sorted into place.
func RunSchedStream(base Scenario, src SubmissionSource, p SchedPolicy) Result {
	return workload.RunSchedStream(base, src, p)
}

// RunSchedStreamSet is RunSchedStream under a per-partition policy
// set.
func RunSchedStreamSet(base Scenario, src SubmissionSource, ps SchedPolicySet) Result {
	return workload.RunSchedStreamSet(base, src, ps)
}

// SchedStatsOfStream computes the metrics of a streamed run.
func SchedStatsOfStream(res Result) SchedStats { return workload.SchedStatsOfStream(res) }
