package cluster_test

import (
	"testing"

	"repro/cluster"
)

func TestUC1ThroughPublicAPI(t *testing.T) {
	sc := cluster.UC1("nest", cluster.Config{Ranks: 2, Threads: 16},
		"pils", cluster.Config{Ranks: 2, Threads: 4}, false)
	serial, drom := cluster.Compare(sc)
	if serial.Err != nil || drom.Err != nil {
		t.Fatalf("errors: %v / %v", serial.Err, drom.Err)
	}
	if g := cluster.Gain(serial.Records.TotalRunTime(), drom.Records.TotalRunTime()); g <= 0 {
		t.Errorf("DROM should improve total run time, gain = %v", g)
	}
}

func TestCustomScenario(t *testing.T) {
	sc := cluster.Scenario{
		Name:  "custom",
		Nodes: 2,
		Subs: []cluster.Submission{
			{Job: cluster.Job{Name: "a", Spec: cluster.Pils(), Cfg: cluster.Config{Ranks: 2, Threads: 16},
				Iters: 100, Nodes: 2, Malleable: true}},
			{At: 20, Job: cluster.Job{Name: "b", Spec: cluster.Pils(), Cfg: cluster.Config{Ranks: 2, Threads: 8},
				Iters: 50, Nodes: 2, Malleable: true}},
		},
	}
	res := cluster.Run(sc, cluster.DROM)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Records.Jobs) != 2 {
		t.Fatalf("jobs recorded = %d", len(res.Records.Jobs))
	}
	b, ok := res.Records.Job("b")
	if !ok || b.WaitTime() > 1e-9 {
		t.Errorf("job b should start immediately under DROM: %+v", b)
	}
}

func TestTable1Reexport(t *testing.T) {
	if len(cluster.Table1("nest")) != 2 || len(cluster.Table1("pils")) != 3 {
		t.Error("Table1 re-export wrong")
	}
}

func TestDJSBThroughPublicAPI(t *testing.T) {
	p := cluster.DJSBParams{Seed: 5, Jobs: 8, MeanInterarrival: 200, Nodes: 2}
	serial, err := cluster.RunDJSB(p, cluster.Serial)
	if err != nil {
		t.Fatal(err)
	}
	drom, err := cluster.RunDJSB(p, cluster.DROM)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Jobs != 8 || drom.Jobs != 8 {
		t.Fatalf("jobs = %d/%d", serial.Jobs, drom.Jobs)
	}
	if drom.AvgResponse >= serial.AvgResponse {
		t.Errorf("DROM avg response %.0f >= serial %.0f", drom.AvgResponse, serial.AvgResponse)
	}
	// Scenario-level control of the stream also works.
	sc, err := cluster.GenerateDJSB(p)
	if err != nil {
		t.Fatal(err)
	}
	res := cluster.Run(sc, cluster.DROM)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := cluster.SummarizeDJSB(res); got.Jobs != 8 {
		t.Errorf("summary jobs = %d", got.Jobs)
	}
}

func TestCustomMachine(t *testing.T) {
	// A fatter node: 4 sockets × 8 cores. A 32-thread-per-rank job is
	// invalid on MN3 but fits here.
	m := cluster.Machine{SocketsPerNode: 4, CoresPerSocket: 8, FreqGHz: 2.0, MemBWGBs: 80, MemGB: 256}
	sc := cluster.Scenario{
		Name:    "fat-node",
		Nodes:   2,
		Machine: m,
		Subs: []cluster.Submission{{Job: cluster.Job{
			Name: "wide", Spec: cluster.Pils(), Cfg: cluster.Config{Ranks: 2, Threads: 32},
			Iters: 50, Nodes: 2, Malleable: true,
		}}},
	}
	res := cluster.Run(sc, cluster.DROM)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Records.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(res.Records.Jobs))
	}
	// The same job must be rejected on the default MN3 nodes.
	sc.Machine = cluster.Machine{}
	res = cluster.Run(sc, cluster.DROM)
	if res.Err == nil {
		t.Fatal("32-thread rank should not fit a 16-core MN3 node")
	}
}

func TestPoliciesDiffer(t *testing.T) {
	sc := cluster.UC2(false)
	serial := cluster.Run(sc, cluster.Serial)
	over := cluster.Run(sc, cluster.Oversubscribe)
	if serial.Err != nil || over.Err != nil {
		t.Fatalf("errors: %v / %v", serial.Err, over.Err)
	}
	if serial.Records.TotalRunTime() == over.Records.TotalRunTime() {
		t.Error("policies should produce different timings")
	}
}
