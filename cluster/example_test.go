package cluster_test

import (
	"fmt"

	"repro/cluster"
)

// Example runs the paper's use case 2 under both policies and prints
// the headline comparison.
func Example() {
	serial, drom := cluster.Compare(cluster.UC2(false))
	if serial.Err != nil || drom.Err != nil {
		panic("scenario failed")
	}
	gain := cluster.Gain(serial.Records.TotalRunTime(), drom.Records.TotalRunTime())
	fmt.Printf("DROM improves UC2 total run time: %v\n", gain > 0)
	gain = cluster.Gain(serial.Records.AvgResponseTime(), drom.Records.AvgResponseTime())
	fmt.Printf("DROM improves UC2 average response: %v\n", gain > 0)
	// Output:
	// DROM improves UC2 total run time: true
	// DROM improves UC2 average response: true
}

// ExampleRunDJSB evaluates scheduling policies on a randomized job
// stream.
func ExampleRunDJSB() {
	p := cluster.DJSBParams{Seed: 1, Jobs: 10, MeanInterarrival: 150, Nodes: 2}
	serial, _ := cluster.RunDJSB(p, cluster.Serial)
	drom, _ := cluster.RunDJSB(p, cluster.DROM)
	fmt.Printf("DROM beats Serial on makespan: %v\n", drom.Makespan < serial.Makespan)
	// Output:
	// DROM beats Serial on makespan: true
}
