// Command report runs the complete evaluation and verifies every
// headline claim of the paper against the measured results, in the
// style of an artifact-evaluation script. It prints a PASS/FAIL table,
// optionally writes it as Markdown, and exits non-zero if any claim's
// direction fails.
//
// Usage:
//
//	report             # run and print
//	report -md REPORT.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/metrics"
	"repro/internal/slurm"
	"repro/internal/version"
	"repro/internal/workload"
)

// claim is one verifiable statement from the paper.
type claim struct {
	ID       string
	Source   string // paper location
	Text     string
	Paper    string // the paper's number, textual
	Measured float64
	Unit     string
	Pass     bool
}

func main() {
	mdPath := flag.String("md", "", "write the report as Markdown to this file")
	showVersion := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}
	claims, err := evaluate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}
	out := render(claims)
	fmt.Print(out)
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(out), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(1)
		}
	}
	for _, c := range claims {
		if !c.Pass {
			os.Exit(2)
		}
	}
}

func pct(v float64) float64 { return 100 * v }

// evaluate runs the experiments and checks the claims.
func evaluate() ([]claim, error) {
	var claims []claim
	add := func(id, source, text, paper string, measured float64, unit string, pass bool) {
		claims = append(claims, claim{ID: id, Source: source, Text: text,
			Paper: paper, Measured: measured, Unit: unit, Pass: pass})
	}

	conf := func(r, t int) apps.Config { return apps.Config{Ranks: r, Threads: t} }

	// --- UC1: NEST + Pils Conf. 2 ---
	serial, drom := workload.Compare(workload.UC1("nest", conf(2, 16), "pils", conf(2, 1), false))
	if serial.Err != nil || drom.Err != nil {
		return nil, fmt.Errorf("uc1: %v / %v", serial.Err, drom.Err)
	}
	gTotal := metrics.Gain(serial.Records.TotalRunTime(), drom.Records.TotalRunTime())
	add("uc1-total", "§6.1/Fig.4", "DROM improves NEST+Pils total run time",
		"~5.9% avg", pct(gTotal), "%", gTotal > 0)

	ps, _ := serial.Records.Job("pils")
	pd, _ := drom.Records.Job("pils")
	gPils := metrics.Gain(ps.ResponseTime(), pd.ResponseTime())
	add("uc1-analytics", "§6.1/Fig.6", "Analytics response time collapses (wait→0)",
		"up to 96%", pct(gPils), "%", gPils > 0.75)

	ns, _ := serial.Records.Job("nest")
	nd, _ := drom.Records.Job("nest")
	pen := -metrics.Gain(ns.ResponseTime(), nd.ResponseTime())
	add("uc1-sim-penalty", "§6.1/Fig.6", "Simulator response penalty stays small",
		"0..4.2%", pct(pen), "%", pen >= 0 && pen < 0.10)

	gAvg := metrics.Gain(serial.Records.AvgResponseTime(), drom.Records.AvgResponseTime())
	add("uc1-avg-resp", "§6.1/Fig.8", "Average response time improves",
		"37..48%", pct(gAvg), "%", gAvg > 0.30 && gAvg < 0.55)

	// --- UC1: NEST + STREAM ---
	serial, drom = workload.Compare(workload.UC1("nest", conf(2, 16), "stream", conf(2, 2), false))
	if serial.Err != nil || drom.Err != nil {
		return nil, fmt.Errorf("uc1 stream: %v / %v", serial.Err, drom.Err)
	}
	gTotal = metrics.Gain(serial.Records.TotalRunTime(), drom.Records.TotalRunTime())
	add("uc1-stream-total", "§6.1/Fig.7", "NEST+STREAM total always better under DROM",
		"avg 1.84%, max 3.5%", pct(gTotal), "%", gTotal > 0)
	ss, _ := serial.Records.Job("stream")
	sd, _ := drom.Records.Job("stream")
	gStream := metrics.Gain(ss.ResponseTime(), sd.ResponseTime())
	add("uc1-stream-resp", "§6.1/Fig.7", "STREAM response time collapses",
		"−92%", pct(gStream), "%", gStream > 0.80)

	// --- UC1: CoreNeuron + STREAM (the paper's best total case) ---
	serial, drom = workload.Compare(workload.UC1("coreneuron", conf(2, 16), "stream", conf(2, 2), false))
	if serial.Err != nil || drom.Err != nil {
		return nil, fmt.Errorf("uc1 cn: %v / %v", serial.Err, drom.Err)
	}
	gTotal = metrics.Gain(serial.Records.TotalRunTime(), drom.Records.TotalRunTime())
	add("uc1-cn-total", "§6.1/Fig.11", "CoreNeuron+STREAM total run time gain",
		"up to 8%", pct(gTotal), "%", gTotal > 0 && gTotal < 0.15)

	// --- UC2 ---
	serial, drom = workload.Compare(workload.UC2(false))
	if serial.Err != nil || drom.Err != nil {
		return nil, fmt.Errorf("uc2: %v / %v", serial.Err, drom.Err)
	}
	gTotal = metrics.Gain(serial.Records.TotalRunTime(), drom.Records.TotalRunTime())
	add("uc2-total", "§6.2/Fig.13", "UC2 total run time improves",
		"2.5%", pct(gTotal), "%", gTotal > 0.01 && gTotal < 0.08)
	gAvg = metrics.Gain(serial.Records.AvgResponseTime(), drom.Records.AvgResponseTime())
	add("uc2-avg-resp", "§6.2/Fig.15", "UC2 average response time improves",
		"10%", pct(gAvg), "%", gAvg > 0.05 && gAvg < 0.25)
	cn, _ := drom.Records.Job("coreneuron")
	add("uc2-hp-start", "§6.2", "High-priority job starts immediately under DROM",
		"starts at submission", cn.WaitTime(), "s wait", cn.WaitTime() < 1e-9)

	// --- Baselines ---
	over := workload.Run(workload.UC2(false), slurm.PolicyOversubscribe)
	if over.Err != nil {
		return nil, over.Err
	}
	add("baseline-oversub", "§2/§6.2", "Oversubscription worse than DROM (UC2 total)",
		"degrades performance", over.Records.TotalRunTime()-drom.Records.TotalRunTime(), "s slower",
		over.Records.TotalRunTime() > drom.Records.TotalRunTime())
	pre := workload.Run(workload.UC2(false), slurm.PolicyPreempt)
	if pre.Err != nil {
		return nil, pre.Err
	}
	add("baseline-preempt", "§2/§6.2", "Preemption worse than DROM (UC2 total)",
		"degrades performance", pre.Records.TotalRunTime()-drom.Records.TotalRunTime(), "s slower",
		pre.Records.TotalRunTime() > drom.Records.TotalRunTime())

	// --- Figure 5 mechanism ---
	res5, fig5, err := workload.Figure5()
	if err != nil {
		return nil, err
	}
	_ = res5
	busy, idle := 0.0, 0.0
	for i, p := range fig5.Series[0].Points {
		switch {
		case i < 4:
			busy += p.Y / 4
		case i < 15:
			idle += p.Y / 11
		}
	}
	add("fig5-imbalance", "§6.1/Fig.5", "Static partition: 4 threads absorb the removed chunk, rest idle",
		"threads 1-4 busy, others idle gaps", busy-idle, " util gap", busy > 0.95 && idle < 0.9)

	// --- Variability ---
	rep, err := workload.RunN(workload.UC1("nest", conf(2, 16), "pils", conf(2, 1), false),
		slurm.PolicyDROM, 3, 0.02)
	if err != nil {
		return nil, err
	}
	add("variability", "§6", "Run-to-run variability within the paper's CV",
		"CV ≤ 3.4%", pct(rep.CVTotal), "% CV", rep.CVTotal <= 0.034)

	return claims, nil
}

// render formats the claims as a Markdown table.
func render(claims []claim) string {
	var sb strings.Builder
	sb.WriteString("# Replication report\n\n")
	sb.WriteString("| claim | paper | measured | verdict |\n|---|---|---|---|\n")
	pass := 0
	for _, c := range claims {
		verdict := "FAIL"
		if c.Pass {
			verdict = "PASS"
			pass++
		}
		fmt.Fprintf(&sb, "| %s (%s): %s | %s | %.1f%s | %s |\n",
			c.ID, c.Source, c.Text, c.Paper, c.Measured, c.Unit, verdict)
	}
	fmt.Fprintf(&sb, "\n%d/%d claims reproduced.\n", pass, len(claims))
	return sb.String()
}
