package main

import (
	"strings"
	"testing"
)

func TestEvaluateAllClaimsPass(t *testing.T) {
	claims, err := evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) < 12 {
		t.Fatalf("only %d claims evaluated", len(claims))
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("claim %s failed: measured %.2f%s (paper: %s)",
				c.ID, c.Measured, c.Unit, c.Paper)
		}
	}
}

func TestRenderFormat(t *testing.T) {
	claims := []claim{
		{ID: "a", Source: "§1", Text: "t", Paper: "p", Measured: 1.5, Unit: "%", Pass: true},
		{ID: "b", Source: "§2", Text: "u", Paper: "q", Measured: 2.5, Unit: "s", Pass: false},
	}
	out := render(claims)
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "FAIL") {
		t.Errorf("verdicts missing:\n%s", out)
	}
	if !strings.Contains(out, "1/2 claims reproduced") {
		t.Errorf("summary missing:\n%s", out)
	}
}
