// Command schedd serves one live simulated cluster over HTTP: submit
// jobs, cancel them, flip their malleability, advance virtual time,
// and ask what-if questions ("when would job X start under policy Y?")
// that are answered by forking the whole simulation and running the
// fork forward — without perturbing the live lineage.
//
// Examples:
//
//	schedd -addr :8080 -sched easy -jobs 200
//	schedd -cluster hetero -sched malleable-shrink -ia 20
//
//	curl -s localhost:8080/state
//	curl -s -X POST localhost:8080/submit -d '{"name":"j1","app":"pils","ranks":4,"threads":4,"nodes":2,"walltime":600}'
//	curl -s 'localhost:8080/whatif?job=j1&policy=fcfs'
//	curl -s -X POST localhost:8080/advance -d '{"until":5000}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/cluster"
	"repro/internal/sched"
	"repro/internal/schedd"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	policy := flag.String("sched", "fcfs", "scheduling policy of the live lineage: fcfs, easy, malleable-shrink or malleable-expand")
	jobs := flag.Int("jobs", 200, "synthetic background workload size (0 = empty cluster)")
	nodes := flag.Int("nodes", 4, "cluster size in nodes (single partition)")
	clusterSpec := flag.String("cluster", "", "partitioned heterogeneous cluster, e.g. 'batch:4xmn3,fat:2xfat' or 'hetero' (overrides -nodes)")
	seed := flag.Int64("seed", 1, "synthetic workload seed")
	ia := flag.Float64("ia", 30, "synthetic workload mean inter-arrival time (s)")
	forks := flag.Int("forks", 4, "maximum concurrently running what-if forks")
	shmemDir := flag.String("shmem", "", "back the live cluster's DROM segments with the file-based "+
		"shmem backend rooted at this directory, so external processes (e.g. dromctl -backend file:...) "+
		"can inspect the live segments; what-if forks still run on private in-memory copies")
	flag.Parse()

	p, err := sched.New(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(2)
	}
	swf := workload.SyntheticSWF{
		Seed: *seed, Jobs: *jobs, Nodes: *nodes, MeanInterarrival: *ia,
	}
	if *clusterSpec != "" {
		cs, err := cluster.ParseCluster(*clusterSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedd:", err)
			os.Exit(2)
		}
		swf.Cluster = cs
	}
	sc, err := workload.SyntheticSWFScenario(swf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(2)
	}
	sc.ShmemDir = *shmemDir
	sess, err := workload.NewSchedSession(sc, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(2)
	}
	srv := schedd.NewServer(sess, *forks)
	log.Printf("schedd: %d-job %s workload under %s, listening on %s", *jobs, sc.Name, *policy, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
