package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

// repoRoot returns the module root (two levels up from cmd/simvet).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	return root
}

// TestSimvetCleanOnRepo is the acceptance gate: the committed tree
// must carry zero findings. A failure here means a contract violation
// landed (fix it) or a legitimate site lost its //simvet annotation
// (restore it with a reason).
func TestSimvetCleanOnRepo(t *testing.T) {
	pkgs, err := load.Packages(repoRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, p := range pkgs {
		for _, a := range suite.Analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.TypesInfo,
				Report: func(d analysis.Diagnostic) {
					t.Errorf("%s: %s [%s]", p.Fset.Position(d.Pos), d.Message, a.Name)
				},
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s: %s: %v", p.ImportPath, a.Name, err)
			}
		}
	}
}

// TestVettoolProtocol builds the simvet binary and drives it through
// cmd/go exactly as CI does: go vet -vettool must exit clean on the
// repo, which exercises the -V=full handshake, the -flags query, and
// the per-package cfg/vetx exchange.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and re-vets the tree")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "simvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/simvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building simvet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool reported findings or failed: %v\n%s", err, out)
	}
}
