// Command simvet runs the repo's contract analyzers (determinism,
// hotpath, scratchcontract, probeguard) over Go packages. It speaks
// two protocols:
//
//   - vettool: `go vet -vettool=$(which simvet) ./...` — cmd/go
//     drives simvet once per package with export data (the CI path);
//   - standalone: `simvet ./...` — simvet shells out to `go list
//     -export` itself and checks every matched package in one
//     process (the interactive path; also `simvet -list`).
//
// Exit status: 0 clean, 1 driver error, 2 findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
	"repro/internal/analysis/unit"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The vet protocol's probes come before flag parsing: cmd/go
	// invokes `simvet -V=full` and `simvet -flags` bare.
	if len(args) == 1 {
		switch args[0] {
		case "-V=full", "--V=full":
			unit.PrintVersion(os.Args[0])
			return 0
		case "-flags", "--flags":
			unit.PrintFlags()
			return 0
		}
	}

	fs := flag.NewFlagSet("simvet", flag.ContinueOnError)
	listOnly := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default all)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *listOnly {
		for _, a := range suite.Analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := suite.Analyzers
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a := suite.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "simvet: unknown analyzer %q\n", name)
				return 1
			}
			analyzers = append(analyzers, a)
		}
	}

	rest := fs.Args()
	// vettool mode: cmd/go passes a single *.cfg argument.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unit.Run(rest[0], analyzers)
	}

	// Standalone mode over package patterns.
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	pkgs, err := load.Packages(".", rest...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
		return 1
	}
	found := 0
	for _, p := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.TypesInfo,
				Report: func(d analysis.Diagnostic) {
					found++
					fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", p.Fset.Position(d.Pos), d.Message, a.Name)
				},
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "simvet: %s: %s: %v\n", p.ImportPath, a.Name, err)
				return 1
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "simvet: %d finding(s)\n", found)
		return 2
	}
	return 0
}
