// Command dromctl demonstrates the administrator workflow of §3.2: a
// user-written administrator process attaching to a node's DROM
// system, listing processes and re-assigning their CPUs while they
// run. Because this reproduction is a single-process library (the
// shared memory is in-process), dromctl hosts a demo node with a few
// polling DLB processes and executes a scripted admin session against
// them, printing each DROM call and its effect.
//
// With -backend file:<dir> dromctl instead attaches to a file-backed
// segment shared with OTHER OS processes (e.g. slurmsim -drom-agent)
// and runs a register/query/setmask session against whatever is live
// in the segment — real two-process DROM, like the C library.
//
// Usage:
//
//	dromctl                 # default in-process demo: list, shrink, expand
//	dromctl -procs 3 -cpus 24
//	dromctl -backend file:/tmp/drom -node node0 -mask 0-3   # attach mode
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/dlb"
	"repro/drom"
	"repro/internal/version"
)

func main() {
	procs := flag.Int("procs", 2, "number of demo DLB processes on the node")
	cpus := flag.Int("cpus", 16, "CPUs of the demo node (attach mode: CPU count if the segment must be created)")
	backend := flag.String("backend", "mem", "shmem backend: mem (in-process demo) or file:<dir> "+
		"(attach to a file-backed registry shared with other OS processes)")
	node := flag.String("node", "node0", "attach mode: segment (node) name to attach to")
	pid := flag.Int64("pid", 0, "attach mode: target PID for -mask (0 = first registered process)")
	maskSpec := flag.String("mask", "", "attach mode: stage this cpulist (e.g. 0-3,8) on the target "+
		"via DROM_SetProcessMask and wait for the target to apply it")
	wait := flag.Duration("wait", 30*time.Second, "attach mode: how long to wait for a registered process")
	showVersion := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}
	var err error
	switch {
	case *backend == "mem":
		err = run(*procs, *cpus)
	case strings.HasPrefix(*backend, "file:"):
		err = runAttach(strings.TrimPrefix(*backend, "file:"), *node, *cpus,
			dlb.PID(*pid), *maskSpec, *wait)
	default:
		err = fmt.Errorf("unknown -backend %q (want mem or file:<dir>)", *backend)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dromctl: %v\n", err)
		os.Exit(1)
	}
}

func run(nprocs, ncpus int) error {
	if nprocs < 1 || ncpus < nprocs {
		return fmt.Errorf("need at least 1 process and 1 CPU per process")
	}
	node := dlb.NewNode("demo", ncpus)

	// Launch the demo processes: each polls DROM every few ms, the way
	// an instrumented application polls at its safe points.
	per := ncpus / nprocs
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var handles []*dlb.Process
	for i := 0; i < nprocs; i++ {
		lo := i * per
		hi := lo + per - 1
		if i == nprocs-1 {
			hi = ncpus - 1
		}
		p, err := dlb.Init(node, 0, dlb.CPURange(lo, hi), "--drom")
		if err != nil {
			return err
		}
		handles = append(handles, p)
		wg.Add(1)
		go func(p *dlb.Process) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(5 * time.Millisecond):
					p.PollDROM()
				}
			}
		}(p)
	}

	admin, err := drom.Attach(node)
	if err != nil {
		return err
	}
	defer admin.Detach()
	fmt.Println("$ DROM_Attach()               -> DLB_SUCCESS")

	list := func() error {
		pids, err := admin.PIDList()
		if err != nil {
			return err
		}
		fmt.Printf("$ DROM_GetPidList()           -> %v\n", pids)
		for _, pid := range pids {
			m, err := admin.ProcessMask(pid, drom.None)
			if err != nil {
				return err
			}
			fmt.Printf("$ DROM_GetProcessMask(%d)   -> %s (%d CPUs)\n", pid, m, m.Count())
		}
		return nil
	}
	if err := list(); err != nil {
		return err
	}

	// Shrink the first process to half, synchronously: the call
	// returns only after the target polled and applied.
	target := handles[0].PID()
	cur, _ := admin.ProcessMask(target, drom.None)
	half := cur.TakeLowest(cur.Count() / 2)
	fmt.Printf("$ DROM_SetProcessMask(%d, %s, SYNC)\n", target, half)
	if err := admin.SetProcessMask(target, half, drom.Sync); err != nil {
		return err
	}
	fmt.Println("  ... target polled and applied -> DLB_SUCCESS")
	if err := list(); err != nil {
		return err
	}

	// Give everything back.
	fmt.Printf("$ DROM_SetProcessMask(%d, %s, SYNC)\n", target, cur)
	if err := admin.SetProcessMask(target, cur, drom.Sync); err != nil {
		return err
	}
	if err := list(); err != nil {
		return err
	}

	close(stop)
	wg.Wait()
	for _, p := range handles {
		p.Finalize()
	}
	fmt.Println("$ DROM_Detach()               -> DLB_SUCCESS")
	return nil
}
