package main

import "testing"

func TestScriptedSession(t *testing.T) {
	if err := run(2, 16); err != nil {
		t.Fatal(err)
	}
	if err := run(3, 24); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(0, 16); err == nil {
		t.Error("zero processes should fail")
	}
	if err := run(4, 2); err == nil {
		t.Error("fewer CPUs than processes should fail")
	}
}
