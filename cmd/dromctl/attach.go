package main

// Attach mode: the administrator half of a two-OS-process DROM
// exchange. dromctl opens the same file-backed registry directory as
// the application process (slurmsim -drom-agent, or another dromctl),
// waits for a registered process to appear in the segment, prints the
// procinfo table, and — when -mask is given — stages the new mask with
// the SYNC flag, returning only after the remote process has polled
// and applied it.

import (
	"fmt"
	"time"

	"repro/dlb"
	"repro/drom"
	"repro/internal/shmem"
)

// attachPollInterval paces the wait for a remote process to register.
const attachPollInterval = 10 * time.Millisecond

func runAttach(dir, node string, ncpus int, target dlb.PID, maskSpec string, wait time.Duration) error {
	fb, err := shmem.NewFileBackend(dir)
	if err != nil {
		return err
	}
	defer fb.Close()
	n, err := dlb.NewNodeReg(node, ncpus, shmem.NewRegistryWith(fb))
	if err != nil {
		return fmt.Errorf("open segment %s: %w", node, err)
	}
	admin, err := drom.Attach(n)
	if err != nil {
		return err
	}
	defer admin.Detach()
	fmt.Printf("$ DROM_Attach(file:%s, node=%s) -> DLB_SUCCESS\n", dir, node)

	// Wait for the other process: a fresh segment is empty until the
	// application's DLB_Init lands.
	pids, err := waitForProcs(admin, wait)
	if err != nil {
		return err
	}
	if err := printTable(admin, pids); err != nil {
		return err
	}
	if maskSpec == "" {
		return nil
	}

	mask, err := dlb.ParseCPUSet(maskSpec)
	if err != nil {
		return fmt.Errorf("-mask: %w", err)
	}
	if target == 0 {
		target = pids[0]
	}
	fmt.Printf("$ DROM_SetProcessMask(%d, %s, SYNC)\n", target, mask)
	if err := admin.SetProcessMask(target, mask, drom.Sync); err != nil {
		return err
	}
	fmt.Println("  ... remote process polled and applied -> DLB_SUCCESS")
	return printTable(admin, []dlb.PID{target})
}

// waitForProcs polls the segment until at least one process is
// registered or the deadline passes.
func waitForProcs(admin *drom.Admin, wait time.Duration) ([]dlb.PID, error) {
	deadline := time.Now().Add(wait)
	for {
		pids, err := admin.PIDList()
		if err != nil {
			return nil, err
		}
		if len(pids) > 0 {
			return pids, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("no process registered within %s", wait)
		}
		time.Sleep(attachPollInterval)
	}
}

func printTable(admin *drom.Admin, pids []dlb.PID) error {
	fmt.Printf("$ DROM_GetPidList()           -> %v\n", pids)
	for _, pid := range pids {
		m, err := admin.ProcessMask(pid, drom.None)
		if err != nil {
			return err
		}
		fmt.Printf("$ DROM_GetProcessMask(%d)   -> %s (%d CPUs)\n", pid, m, m.Count())
	}
	return nil
}
