package main

import (
	"os"
	"strings"
	"testing"

	"repro/cluster"
)

func TestBuildScenario(t *testing.T) {
	if _, err := buildScenario("uc1", "nest", 1, "pils", 2, false); err != nil {
		t.Errorf("uc1: %v", err)
	}
	if _, err := buildScenario("uc2", "", 0, "", 0, true); err != nil {
		t.Errorf("uc2: %v", err)
	}
	bad := []struct {
		name, sim string
		simConf   int
		ana       string
		anaConf   int
	}{
		{"nope", "nest", 1, "pils", 1},
		{"uc1", "bogus", 1, "pils", 1},
		{"uc1", "nest", 9, "pils", 1},
		{"uc1", "nest", 1, "bogus", 1},
		{"uc1", "nest", 1, "pils", 9},
	}
	for _, tc := range bad {
		if _, err := buildScenario(tc.name, tc.sim, tc.simConf, tc.ana, tc.anaConf, false); err == nil {
			t.Errorf("buildScenario(%+v) should fail", tc)
		}
	}
}

func TestParsePolicies(t *testing.T) {
	for _, p := range []string{"serial", "drom", "oversubscribe", "preempt", "both", "all"} {
		got, err := parsePolicies(p)
		if err != nil || len(got) == 0 {
			t.Errorf("parsePolicies(%q) = %v, %v", p, got, err)
		}
	}
	if _, err := parsePolicies("bogus"); err == nil {
		t.Error("bogus policy should fail")
	}
}

func TestRunDJSBSmoke(t *testing.T) {
	if err := runDJSB(1, 6, 200, 2, "both"); err != nil {
		t.Fatal(err)
	}
	if err := runDJSB(1, 6, 200, 2, "bogus"); err == nil {
		t.Fatal("bogus policy should fail")
	}
}

func TestParseSchedPolicies(t *testing.T) {
	for _, in := range []string{"", "all", "fcfs", "easy,malleable", "malleable-shrink, malleable-expand"} {
		got, err := parseSchedPolicies(in)
		if err != nil || len(got) == 0 {
			t.Errorf("parseSchedPolicies(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseSchedPolicies("fcfs,bogus"); err == nil {
		t.Error("bogus sched policy should fail")
	}
	// A spec with '=' pairs is a single per-partition policy set.
	got, err := parseSchedPolicies("batch=easy,fat=shrink")
	if err != nil || len(got) != 1 {
		t.Fatalf("parseSchedPolicies(set) = %v, %v", got, err)
	}
	if got[0].String() != "batch=easy,fat=malleable-shrink" {
		t.Errorf("set = %q, want canonical names", got[0])
	}
	if _, err := parseSchedPolicies("batch=bogus"); err == nil {
		t.Error("bogus set policy should fail")
	}
}

func TestRunSchedSmoke(t *testing.T) {
	if err := runSched(schedArgs{
		names: "easy,malleable", seed: 1, jobs: 40, interarrival: 30, nodes: 2, check: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := runSched(schedArgs{names: "bogus", seed: 1, jobs: 10, nodes: 2}); err == nil {
		t.Fatal("bogus policy should fail")
	}
	if err := runSched(schedArgs{names: "fcfs", swfPath: "/nonexistent.swf", seed: 1, nodes: 2}); err == nil {
		t.Fatal("missing trace file should fail")
	}
}

func TestRunSchedHeteroFaultSmoke(t *testing.T) {
	cs, err := cluster.ParseCluster("hetero")
	if err != nil {
		t.Fatal(err)
	}
	if err := runSched(schedArgs{
		names: "malleable", seed: 2, jobs: 60, interarrival: 20,
		cluster: cs, cancel: 0.1, fail: 0.1, check: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := runSchedStream(schedArgs{
		names: "fcfs", seed: 2, jobs: 60, interarrival: 20,
		cluster: cs, cancel: 0.1, fail: 0.1,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSchedObsSmoke(t *testing.T) {
	dir := t.TempDir()
	o := obsArgs{
		tracePath:  dir + "/trace.jsonl",
		explainJob: "j00005",
		sample:     600,
		sampleOut:  dir + "/ts.csv",
		hist:       true,
	}
	if err := runSched(schedArgs{
		names: "fcfs", seed: 1, jobs: 40, interarrival: 30, nodes: 2, obs: o,
	}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{o.tracePath, o.sampleOut} {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Errorf("%s: probed replay wrote nothing", f)
		}
	}
	// The consumers are per-replay; multiple policies must be rejected
	// up front rather than mingling streams.
	err := runSched(schedArgs{
		names: "easy,malleable", seed: 1, jobs: 40, interarrival: 30, nodes: 2, obs: o,
	})
	if err == nil || !strings.Contains(err.Error(), "single policy") {
		t.Fatalf("multi-policy probed replay should fail, got %v", err)
	}
	if err := runSched(schedArgs{
		names: "fcfs", seed: 1, jobs: 40, interarrival: 30, nodes: 2,
		obs: obsArgs{sample: 600},
	}); err == nil {
		t.Fatal("-sample without -sample-out should fail")
	}
}

func TestRunSchedSpilloverSmoke(t *testing.T) {
	cs, err := cluster.ParseCluster("hetero")
	if err != nil {
		t.Fatal(err)
	}
	if err := runSched(schedArgs{
		names: "batch=easy,fat=malleable-shrink", seed: 1, jobs: 120, interarrival: 20,
		cluster: cs, spill: true, check: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := runSchedStream(schedArgs{
		names: "easy", seed: 1, jobs: 120, interarrival: 20,
		cluster: cs, spill: true, spillAfter: 30, spillDepth: 2,
	}); err != nil {
		t.Fatal(err)
	}
}
