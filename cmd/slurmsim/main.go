// Command slurmsim runs the paper's workload scenarios on the
// simulated DROM-enabled SLURM cluster and prints the system metrics
// (and optionally the Paraver-like trace timelines).
//
// Examples:
//
//	slurmsim -scenario uc1 -sim nest -simconf 1 -ana pils -anaconf 2
//	slurmsim -scenario uc1 -policy serial -sim coreneuron -ana stream
//	slurmsim -scenario uc2 -trace -metric cycles
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cluster"
	"repro/internal/djsb"
)

func main() {
	scenario := flag.String("scenario", "uc1", "uc1 (in-situ analytics) or uc2 (high-priority job)")
	policy := flag.String("policy", "both", "serial, drom, oversubscribe, or both")
	simName := flag.String("sim", "nest", "uc1 simulator: nest or coreneuron")
	simConf := flag.Int("simconf", 1, "uc1 simulator configuration (Table 1)")
	anaName := flag.String("ana", "pils", "uc1 analytics: pils or stream")
	anaConf := flag.Int("anaconf", 2, "uc1 analytics configuration (Table 1)")
	traced := flag.Bool("trace", false, "record and print the trace timeline")
	metric := flag.String("metric", "util", "timeline metric: util, cycles, or ipc")
	width := flag.Int("width", 100, "timeline width in characters")
	seed := flag.Int64("seed", 1, "djsb: random seed")
	jobs := flag.Int("jobs", 20, "djsb: number of jobs")
	interarrival := flag.Float64("interarrival", 150, "djsb: mean inter-arrival time (s)")
	nodes := flag.Int("nodes", 2, "djsb: cluster size")
	flag.Parse()

	if *scenario == "djsb" {
		if err := runDJSB(*seed, *jobs, *interarrival, *nodes, *policy); err != nil {
			fmt.Fprintf(os.Stderr, "slurmsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	sc, err := buildScenario(*scenario, *simName, *simConf, *anaName, *anaConf, *traced)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slurmsim: %v\n", err)
		os.Exit(1)
	}

	policies, err := parsePolicies(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slurmsim: %v\n", err)
		os.Exit(1)
	}

	for _, p := range policies {
		res := cluster.Run(sc, p)
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "slurmsim: %s under %s: %v\n", sc.Name, p, res.Err)
			os.Exit(1)
		}
		fmt.Printf("=== %s under %s ===\n", sc.Name, p)
		fmt.Print(res.Records.String())
		if *traced && res.Tracer != nil {
			fmt.Println(res.Tracer.RenderTimeline("", *width, *metric))
		}
		fmt.Println()
	}
}

// runDJSB generates a randomized DJSB-style stream and compares the
// requested policies on it.
func runDJSB(seed int64, jobs int, interarrival float64, nodes int, policy string) error {
	policies, err := parsePolicies(policy)
	if err != nil {
		return err
	}
	p := djsb.Params{Seed: seed, Jobs: jobs, MeanInterarrival: interarrival, Nodes: nodes}
	fmt.Printf("=== DJSB stream: seed=%d jobs=%d mean-interarrival=%.0fs nodes=%d ===\n",
		seed, jobs, interarrival, nodes)
	for _, pol := range policies {
		rep, err := djsb.Run(p, pol)
		if err != nil {
			return err
		}
		fmt.Println(rep)
	}
	return nil
}

func buildScenario(name, simName string, simConf int, anaName string, anaConf int, traced bool) (cluster.Scenario, error) {
	switch name {
	case "uc2":
		return cluster.UC2(traced), nil
	case "uc1":
		simCfgs := cluster.Table1(simName)
		if simCfgs == nil {
			return cluster.Scenario{}, fmt.Errorf("unknown simulator %q", simName)
		}
		if simConf < 1 || simConf > len(simCfgs) {
			return cluster.Scenario{}, fmt.Errorf("%s has configurations 1..%d", simName, len(simCfgs))
		}
		anaCfgs := cluster.Table1(anaName)
		if anaCfgs == nil {
			return cluster.Scenario{}, fmt.Errorf("unknown analytics %q", anaName)
		}
		if anaConf < 1 || anaConf > len(anaCfgs) {
			return cluster.Scenario{}, fmt.Errorf("%s has configurations 1..%d", anaName, len(anaCfgs))
		}
		return cluster.UC1(simName, simCfgs[simConf-1], anaName, anaCfgs[anaConf-1], traced), nil
	default:
		return cluster.Scenario{}, fmt.Errorf("unknown scenario %q (uc1 or uc2)", name)
	}
}

func parsePolicies(p string) ([]cluster.Policy, error) {
	switch p {
	case "serial":
		return []cluster.Policy{cluster.Serial}, nil
	case "drom":
		return []cluster.Policy{cluster.DROM}, nil
	case "oversubscribe":
		return []cluster.Policy{cluster.Oversubscribe}, nil
	case "preempt":
		return []cluster.Policy{cluster.Preempt}, nil
	case "both":
		return []cluster.Policy{cluster.Serial, cluster.DROM}, nil
	case "all":
		return []cluster.Policy{cluster.Serial, cluster.DROM, cluster.Oversubscribe, cluster.Preempt}, nil
	}
	return nil, fmt.Errorf("unknown policy %q", p)
}
