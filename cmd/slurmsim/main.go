// Command slurmsim runs the paper's workload scenarios on the
// simulated DROM-enabled SLURM cluster and prints the system metrics
// (and optionally the Paraver-like trace timelines).
//
// Examples:
//
//	slurmsim -scenario uc1 -sim nest -simconf 1 -ana pils -anaconf 2
//	slurmsim -scenario uc1 -policy serial -sim coreneuron -ana stream
//	slurmsim -scenario uc2 -trace -metric cycles
//	slurmsim -sched easy,malleable -jobs 1000          # synthetic SWF replay
//	slurmsim -sched all -swf trace.swf -nodes 8        # real trace replay
//	slurmsim -sched fcfs -jobs 1000000 -stream         # bounded-memory replay
//	slurmsim -sweep 'policies=all;seeds=1-4;jobs=5000' # parallel experiment grid
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/cluster"
	"repro/internal/djsb"
	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/version"
)

func main() {
	scenario := flag.String("scenario", "uc1", "uc1 (in-situ analytics) or uc2 (high-priority job)")
	policy := flag.String("policy", "both", "serial, drom, oversubscribe, or both")
	simName := flag.String("sim", "nest", "uc1 simulator: nest or coreneuron")
	simConf := flag.Int("simconf", 1, "uc1 simulator configuration (Table 1)")
	anaName := flag.String("ana", "pils", "uc1 analytics: pils or stream")
	anaConf := flag.Int("anaconf", 2, "uc1 analytics configuration (Table 1)")
	traced := flag.Bool("trace", false, "record and print the trace timeline")
	metric := flag.String("metric", "util", "timeline metric: util, cycles, or ipc")
	width := flag.Int("width", 100, "timeline width in characters")
	seed := flag.Int64("seed", 1, "djsb/swf: random seed")
	jobs := flag.Int("jobs", 20, "djsb/swf: number of jobs")
	interarrival := flag.Float64("interarrival", 150, "djsb/swf: mean inter-arrival time (s)")
	nodes := flag.Int("nodes", 2, "djsb/swf: cluster size")
	schedNames := flag.String("sched", "", "scheduling policies to replay an SWF workload under: "+
		"comma list of fcfs, easy, malleable-shrink, malleable-expand (alias malleable), or all; "+
		"a spec with '=' pairs is ONE per-partition policy set, e.g. 'batch=easy,fat=malleable-shrink' "+
		"(optionally with a bare default: 'easy,fat=malleable-shrink')")
	swfPath := flag.String("swf", "", "SWF trace file to replay (default: seeded synthetic trace)")
	clusterSpec := flag.String("cluster", "", "swf/sched: partitioned heterogeneous cluster, e.g. "+
		"'batch:4xmn3,fat:2xfat' or the 'hetero' preset (overrides -nodes; see cluster.ParseCluster)")
	cancelRate := flag.Float64("cancel", 0, "swf synthetic: per-job probability of a cancelled-while-queued record")
	failRate := flag.Float64("fail", 0, "swf synthetic: per-job probability of a failed-mid-run record")
	spill := flag.Bool("spill", false, "swf/sched: enable the cross-partition spillover pass "+
		"(re-route a queued job its home partition cannot host to another partition that fits it, "+
		"guarded by the host's EASY head reservation)")
	spillAfter := flag.Float64("spill-after", 0, "spillover: minimum queue wait in seconds before a job may spill")
	spillDepth := flag.Int("spill-depth", 0, "spillover: minimum home-partition backlog before jobs may spill")
	nodeFaults := flag.String("node-faults", "", "swf/sched: deterministic node outage script, e.g. "+
		"'node0:down@100..400+node5:drain@200..300' (entries joined with '+' or ';'; "+
		"down kills and requeues residents, drain only blocks new launches)")
	mtbf := flag.Float64("mtbf", 0, "swf/sched: mean time between seeded random node failures "+
		"in VIRTUAL seconds (0 = off; the fault stream is seeded from -seed)")
	mttr := flag.Float64("mttr", 0, "swf/sched: mean repair time of seeded node failures in "+
		"virtual seconds (default 600)")
	requeue := flag.Int("requeue", 0, "swf/sched: per-job requeue cap after node failures "+
		"(0 = default 3, negative = no requeues: the first failure is terminal)")
	check := flag.Bool("check", false, "swf: cross-check the controller's incremental free-CPU "+
		"accounting against a full shared-memory re-scan every cycle (slower)")
	stream := flag.Bool("stream", false, "swf/sched: stream the trace instead of materializing it "+
		"(bounded memory, aggregate statistics only; for million-job replays)")
	sweepSpec := flag.String("sweep", "", "run a parallel experiment grid, e.g. "+
		"'policies=all;seeds=1-4;jobs=5000;nodes=4' (see internal/sweep.ParseGrid)")
	sweepWorkers := flag.Int("workers", 0, "sweep: worker goroutines (0 = GOMAXPROCS)")
	format := flag.String("format", "table", "sweep output format: table, json, or csv")
	out := flag.String("out", "", "sweep: write the summary to this file instead of stdout")
	traceSched := flag.String("trace-sched", "", "sched: write a JSONL decision trace (one line per "+
		"non-empty policy pass: virtual time, partition, queue depth, free CPUs, actions with reasons)")
	explainJob := flag.String("explain", "", "sched: print the named job's lifecycle story after the replay "+
		"(submission, queue-position evolution, wait reasons, placement, completion)")
	sample := flag.Duration("sample", 0, "sched: emit a per-partition time series every given interval "+
		"of VIRTUAL time (e.g. 60s): utilization, queue depth, running jobs, spill tallies")
	sampleOut := flag.String("sample-out", "", "sched: time-series output file; '-' for stdout, "+
		"a .json suffix selects JSONL over CSV (required with -sample)")
	hist := flag.Bool("hist", false, "sched: report wall-time histograms per scheduling cycle and "+
		"per Schedule() call at exit")
	progress := flag.Bool("progress", false, "sweep: live progress (cells done/total, cells/s, ETA) to stderr")
	dromAgent := flag.Bool("drom-agent", false, "run as a DROM agent process: register on a file-backed "+
		"segment and poll until an external administrator (dromctl -backend file:...) changes the mask")
	shmemDir := flag.String("shmem-dir", "", "drom-agent: directory of the file-backed shmem registry")
	agentNode := flag.String("agent-node", "node0", "drom-agent: segment (node) name")
	agentCPUs := flag.Int("agent-cpus", 16, "drom-agent: node CPU count when creating the segment")
	agentTimeout := flag.Duration("agent-timeout", 30*time.Second, "drom-agent: give up after this long "+
		"without observing a mask change")
	showVersion := flag.Bool("version", false, "print the build's module version and VCS revision, then exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return
	}

	if *dromAgent {
		if *shmemDir == "" {
			fmt.Fprintln(os.Stderr, "slurmsim: -drom-agent requires -shmem-dir")
			os.Exit(2)
		}
		if err := runDromAgent(*shmemDir, *agentNode, *agentCPUs, *agentTimeout); err != nil {
			fmt.Fprintf(os.Stderr, "slurmsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "slurmsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "slurmsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	writeMemProfile := func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "slurmsim: -memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "slurmsim: -memprofile: %v\n", err)
		}
	}
	defer writeMemProfile()
	// Route through run() so both profiles flush on success AND
	// failure (os.Exit skips defers, so the error path writes them
	// explicitly — a failing replay is exactly when a profile helps).
	if err := run(runArgs{
		scenario: *scenario, policy: *policy,
		simName: *simName, simConf: *simConf, anaName: *anaName, anaConf: *anaConf,
		traced: *traced, metric: *metric, width: *width,
		seed: *seed, jobs: *jobs, interarrival: *interarrival, nodes: *nodes,
		schedNames: *schedNames, swfPath: *swfPath, check: *check, stream: *stream,
		clusterSpec: *clusterSpec, cancelRate: *cancelRate, failRate: *failRate,
		spill: *spill, spillAfter: *spillAfter, spillDepth: *spillDepth,
		nodeFaults: *nodeFaults, mtbf: *mtbf, mttr: *mttr, requeue: *requeue,
		sweepSpec: *sweepSpec, sweepWorkers: *sweepWorkers, format: *format, out: *out,
		progress: *progress,
		obs: obsArgs{
			tracePath:  *traceSched,
			explainJob: *explainJob,
			sample:     sample.Seconds(),
			sampleOut:  *sampleOut,
			hist:       *hist,
		},
	}); err != nil {
		fmt.Fprintf(os.Stderr, "slurmsim: %v\n", err)
		pprof.StopCPUProfile()
		writeMemProfile()
		os.Exit(1)
	}
}

// runArgs carries the parsed flags.
type runArgs struct {
	scenario, policy    string
	simName, anaName    string
	simConf, anaConf    int
	traced              bool
	metric              string
	width               int
	seed                int64
	jobs                int
	interarrival        float64
	nodes               int
	schedNames, swfPath string
	check, stream       bool
	clusterSpec         string
	cancelRate          float64
	failRate            float64
	spill               bool
	spillAfter          float64
	spillDepth          int
	nodeFaults          string
	mtbf, mttr          float64
	requeue             int
	sweepSpec           string
	sweepWorkers        int
	format, out         string
	progress            bool
	obs                 obsArgs
}

// obsArgs carries the observability-consumer flags of the sched
// replay modes (see internal/obs).
type obsArgs struct {
	tracePath  string  // -trace-sched: JSONL decision trace
	explainJob string  // -explain: per-job lifecycle story
	sample     float64 // -sample: virtual-time sampling interval (s)
	sampleOut  string  // -sample-out: time-series destination
	hist       bool    // -hist: cycle/Schedule wall-time histograms
}

// active reports whether any consumer was requested.
func (o obsArgs) active() bool {
	return o.tracePath != "" || o.explainJob != "" || o.sample > 0 || o.hist
}

// obsRun is one replay's consumer wiring: the composed probe plus the
// finishers that flush files and print reports once the replay ends.
type obsRun struct {
	probe   cluster.Probe
	trace   *obs.SchedTrace
	traceF  *os.File
	explain *obs.Explain
	sampler *obs.Sampler
	sampleF *os.File
	hist    *obs.CycleHist
}

// start opens the consumers' outputs and composes the probe.
// A zero obsArgs yields a nil probe at no cost.
func (o obsArgs) start() (*obsRun, error) {
	r := &obsRun{}
	if o.tracePath != "" {
		f, err := os.Create(o.tracePath)
		if err != nil {
			return nil, fmt.Errorf("-trace-sched: %w", err)
		}
		r.traceF = f
		r.trace = obs.NewSchedTrace(f)
	}
	if o.explainJob != "" {
		r.explain = obs.NewExplain(o.explainJob)
	}
	if o.sample > 0 {
		switch o.sampleOut {
		case "":
			r.close()
			return nil, fmt.Errorf("-sample requires -sample-out (a file path, or '-' for stdout)")
		case "-":
			r.sampler = obs.NewSampler(o.sample, os.Stdout, false)
		default:
			f, err := os.Create(o.sampleOut)
			if err != nil {
				r.close()
				return nil, fmt.Errorf("-sample-out: %w", err)
			}
			r.sampleF = f
			r.sampler = obs.NewSampler(o.sample, f, strings.HasSuffix(o.sampleOut, ".json"))
		}
	}
	if o.hist {
		r.hist = &obs.CycleHist{}
	}
	// Append only the consumers that exist: a typed-nil *SchedTrace
	// etc. would be a non-nil Probe interface and defeat Multi's nil
	// dropping.
	var ps []obs.Probe
	if r.trace != nil {
		ps = append(ps, r.trace)
	}
	if r.explain != nil {
		ps = append(ps, r.explain)
	}
	if r.sampler != nil {
		ps = append(ps, r.sampler)
	}
	if r.hist != nil {
		ps = append(ps, r.hist)
	}
	r.probe = obs.Multi(ps...)
	return r, nil
}

// close releases the output files (error path of start).
func (r *obsRun) close() {
	if r.traceF != nil {
		r.traceF.Close()
	}
	if r.sampleF != nil {
		r.sampleF.Close()
	}
}

// finish flushes the file-backed consumers and prints the
// explain/histogram reports.
func (r *obsRun) finish() error {
	if r.trace != nil {
		if err := r.trace.Flush(); err != nil {
			return fmt.Errorf("-trace-sched: %w", err)
		}
		if err := r.traceF.Close(); err != nil {
			return fmt.Errorf("-trace-sched: %w", err)
		}
	}
	if r.sampler != nil {
		if err := r.sampler.Flush(); err != nil {
			return fmt.Errorf("-sample-out: %w", err)
		}
		if r.sampleF != nil {
			if err := r.sampleF.Close(); err != nil {
				return fmt.Errorf("-sample-out: %w", err)
			}
		}
	}
	if r.explain != nil {
		fmt.Print(r.explain.Story())
	}
	if r.hist != nil {
		r.hist.Report(os.Stdout)
	}
	return nil
}

// schedArgs parameterizes the SWF replay modes.
type schedArgs struct {
	names, swfPath string
	seed           int64
	jobs           int
	interarrival   float64
	nodes          int
	cluster        cluster.ClusterSpec
	cancel, fail   float64
	spill          bool
	spillAfter     float64
	spillDepth     int
	nodeFaults     string
	mtbf, mttr     float64
	requeue        int
	check          bool
	obs            obsArgs
}

// spillInto copies the spillover knobs onto a scenario.
func (a schedArgs) spillInto(sc *cluster.Scenario) {
	sc.Spill = a.spill
	sc.SpillAfter = a.spillAfter
	sc.SpillDepth = a.spillDepth
}

// faultsInto copies the node fault-injection knobs onto a scenario.
// The seeded fault stream uses the trace seed, like the sweep engine.
func (a schedArgs) faultsInto(sc *cluster.Scenario) {
	sc.NodeFaults = a.nodeFaults
	sc.MTBF = a.mtbf
	sc.MTTR = a.mttr
	sc.MaxRequeues = a.requeue
	sc.FaultSeed = a.seed
}

func run(a runArgs) error {
	if a.sweepSpec != "" {
		return runSweep(a.sweepSpec, a.sweepWorkers, a.format, a.out, a.progress)
	}
	if a.obs.active() && a.schedNames == "" && a.swfPath == "" {
		return fmt.Errorf("-trace-sched/-explain/-sample/-hist apply to the -sched replay modes")
	}
	if a.schedNames != "" || a.swfPath != "" {
		// Only honor -interarrival/-jobs/-nodes when the user set them;
		// the SWF mode's own defaults (a contended 1000-job trace on 4
		// nodes) apply otherwise.
		sa := schedArgs{
			names: a.schedNames, swfPath: a.swfPath, seed: a.seed,
			cancel: a.cancelRate, fail: a.failRate, check: a.check,
			spill: a.spill, spillAfter: a.spillAfter, spillDepth: a.spillDepth,
			nodeFaults: a.nodeFaults, mtbf: a.mtbf, mttr: a.mttr, requeue: a.requeue,
			obs: a.obs,
		}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "interarrival":
				sa.interarrival = a.interarrival
			case "jobs":
				sa.jobs = a.jobs
			case "nodes":
				sa.nodes = a.nodes
			}
		})
		if a.clusterSpec != "" {
			cs, err := cluster.ParseCluster(a.clusterSpec)
			if err != nil {
				return err
			}
			sa.cluster = cs
		}
		if a.stream {
			return runSchedStream(sa)
		}
		return runSched(sa)
	}

	if a.scenario == "djsb" {
		return runDJSB(a.seed, a.jobs, a.interarrival, a.nodes, a.policy)
	}

	sc, err := buildScenario(a.scenario, a.simName, a.simConf, a.anaName, a.anaConf, a.traced)
	if err != nil {
		return err
	}

	policies, err := parsePolicies(a.policy)
	if err != nil {
		return err
	}

	for _, p := range policies {
		res := cluster.Run(sc, p)
		if res.Err != nil {
			return fmt.Errorf("%s under %s: %w", sc.Name, p, res.Err)
		}
		fmt.Printf("=== %s under %s ===\n", sc.Name, p)
		fmt.Print(res.Records.String())
		if a.traced && res.Tracer != nil {
			fmt.Println(res.Tracer.RenderTimeline("", a.width, a.metric))
		}
		fmt.Println()
	}
	return nil
}

// runSweep parses the grid spec, fans the experiments across workers
// and writes the summary in the requested format.
func runSweep(spec string, workers int, format, out string, progress bool) error {
	grid, err := sweep.ParseGrid(spec)
	if err != nil {
		return err
	}
	if progress {
		// Progress lines go to stderr: stdout keeps the byte-identical
		// grid-order summary.
		grid.Probe = obs.NewProgress(os.Stderr)
	}
	sum, err := sweep.Run(grid, workers)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "table", "":
		_, err = fmt.Fprint(w, sum.Table())
	case "json":
		err = sum.WriteJSON(w)
	case "csv":
		err = sum.WriteCSV(w)
	default:
		err = fmt.Errorf("unknown sweep format %q (table, json, csv)", format)
	}
	return err
}

// shapeLabel renders the cluster part of a replay banner.
func (a schedArgs) shapeLabel() string {
	if len(a.cluster.Partitions) > 0 {
		return fmt.Sprintf("cluster %s", a.cluster)
	}
	n := a.nodes
	if n <= 0 {
		n = 4
	}
	return fmt.Sprintf("%d nodes", n)
}

// printPartitions prints the per-partition metric lines of a
// multi-partition run.
func printPartitions(res cluster.Result, multi bool) {
	if !multi {
		return
	}
	for _, ps := range res.Records.PartitionStats() {
		fmt.Printf("      %s\n", ps)
	}
}

// runSchedStream replays an SWF workload through the bounded-memory
// streaming path: the trace is never materialized and job records are
// folded into aggregates as they complete, so million-job traces
// replay in memory proportional to the scheduler backlog.
func runSchedStream(a schedArgs) error {
	policies, err := parseSchedPolicies(a.names)
	if err != nil {
		return err
	}
	if len(a.cluster.Partitions) == 0 && a.nodes <= 0 {
		// The streaming scenario is built here (not by SWFScenario, which
		// carries the mapper's cluster): normalize to the mapper's 4-node
		// default so the cluster and the trace mapping always agree.
		a.nodes = 4
	}
	if a.swfPath != "" {
		// a.jobs stays 0 unless the user set -jobs: a file trace replays
		// whole by default, exactly like the materialized path.
		fmt.Printf("=== SWF stream replay: %s on %s ===\n", a.swfPath, a.shapeLabel())
	} else {
		if a.jobs <= 0 {
			a.jobs = 1000
		}
		fmt.Printf("=== SWF stream replay: synthetic seed=%d jobs=%d on %s ===\n", a.seed, a.jobs, a.shapeLabel())
	}
	base := cluster.Scenario{Nodes: a.nodes, Cluster: a.cluster, DebugInvariants: a.check}
	a.spillInto(&base)
	a.faultsInto(&base)
	if err := a.obs.checkSingle(policies); err != nil {
		return err
	}
	multi := len(a.cluster.Partitions) > 1
	for _, ps := range policies {
		or, err := a.obs.start()
		if err != nil {
			return err
		}
		base.Probe = or.probe
		var src cluster.SubmissionSource
		if a.swfPath != "" {
			f, err := os.Open(a.swfPath)
			if err != nil {
				or.close()
				return err
			}
			// The source's parser goroutine closes f when it exits.
			src = cluster.NewSWFReaderSource(f, cluster.SWFOptions{
				Nodes: a.nodes, Cluster: a.cluster, MaxJobs: a.jobs,
			})
		} else {
			src = cluster.SyntheticSWF{
				Seed: a.seed, Jobs: a.jobs, Nodes: a.nodes, MeanInterarrival: a.interarrival,
				Cluster: a.cluster, CancelRate: a.cancel, FailRate: a.fail,
			}.Source()
		}
		start := time.Now()
		res := cluster.RunSchedStreamSet(base, src, ps)
		wall := time.Since(start)
		if res.Err != nil {
			or.close()
			return fmt.Errorf("%s: %w", ps, res.Err)
		}
		skipped := ""
		if d := res.Records.Dropped; d.Total() > 0 {
			skipped = fmt.Sprintf(", trace: %s", d)
		}
		fmt.Printf("sched=%-17s %s [%d cycles, %d events, %.2fs wall%s]\n",
			ps, cluster.SchedStatsOfStream(res), res.SchedCycles, res.Events, wall.Seconds(), skipped)
		printPartitions(res, multi)
		if err := or.finish(); err != nil {
			return err
		}
	}
	return nil
}

// runSched replays an SWF workload — a trace file or the seeded
// synthetic generator — under the requested scheduling policies and
// prints the scheduler-quality metrics of each. Zero-valued
// parameters mean "unset": the defaults of the trace mapping apply
// (4 nodes, 1000 synthetic jobs, contended inter-arrival).
func runSched(a schedArgs) error {
	policies, err := parseSchedPolicies(a.names)
	if err != nil {
		return err
	}
	var sc cluster.Scenario
	if a.swfPath != "" {
		f, err := os.Open(a.swfPath)
		if err != nil {
			return err
		}
		defer f.Close()
		records, err := cluster.ParseSWF(f)
		if err != nil {
			return err
		}
		var skipped int
		sc, skipped, err = cluster.SWFScenario(records, cluster.SWFOptions{
			Nodes: a.nodes, Cluster: a.cluster, MaxJobs: a.jobs,
		})
		if err != nil {
			return err
		}
		fmt.Printf("=== SWF replay: %s (%d of %d jobs, %d skipped) on %s ===\n",
			a.swfPath, len(sc.Subs), len(records), skipped, a.shapeLabel())
	} else {
		if a.jobs <= 0 {
			a.jobs = 1000
		}
		sc, err = cluster.SyntheticSWFScenario(cluster.SyntheticSWF{
			Seed: a.seed, Jobs: a.jobs, Nodes: a.nodes, MeanInterarrival: a.interarrival,
			Cluster: a.cluster, CancelRate: a.cancel, FailRate: a.fail,
		})
		if err != nil {
			return err
		}
		fmt.Printf("=== SWF replay: synthetic seed=%d jobs=%d on %s ===\n", a.seed, a.jobs, a.shapeLabel())
	}
	sc.DebugInvariants = a.check
	a.spillInto(&sc)
	a.faultsInto(&sc)
	if err := a.obs.checkSingle(policies); err != nil {
		return err
	}
	multi := len(a.cluster.Partitions) > 1
	for _, ps := range policies {
		or, err := a.obs.start()
		if err != nil {
			return err
		}
		sc.Probe = or.probe
		start := time.Now()
		res := cluster.RunSchedSet(sc, ps)
		wall := time.Since(start)
		if res.Err != nil {
			or.close()
			return fmt.Errorf("%s: %w", ps, res.Err)
		}
		dropped := ""
		if d := res.Records.Dropped; d.Total() > 0 {
			dropped = fmt.Sprintf(", trace: %s", d)
		}
		fmt.Printf("sched=%-17s %s [%d cycles, %d events, %.2fs wall%s]\n",
			ps, cluster.SchedStatsOf(sc, res), res.SchedCycles, res.Events, wall.Seconds(), dropped)
		printPartitions(res, multi)
		if err := or.finish(); err != nil {
			return err
		}
	}
	return nil
}

// checkSingle rejects multi-policy replays when a consumer is active:
// the trace, story and time series describe ONE replay, and mixing
// several policies' streams into one output would be misleading.
func (o obsArgs) checkSingle(policies []cluster.SchedPolicySet) error {
	if o.active() && len(policies) > 1 {
		return fmt.Errorf("-trace-sched/-explain/-sample/-hist need a single policy; pick one with -sched (got %d)", len(policies))
	}
	return nil
}

// parseSchedPolicies resolves the -sched value into one policy set
// per replay. A spec containing '=' pairs is a single per-partition
// policy set (the pairs and the optional bare default share its comma
// list); otherwise the value is a comma-separated list of single
// policies, each replayed separately ("" and "all" mean every
// policy).
func parseSchedPolicies(names string) ([]cluster.SchedPolicySet, error) {
	if strings.Contains(names, "=") {
		ps, err := cluster.ParseSchedPolicySet(names)
		if err != nil {
			return nil, err
		}
		return []cluster.SchedPolicySet{ps}, nil
	}
	if names == "" || names == "all" {
		names = strings.Join(cluster.SchedPolicyNames(), ",")
	}
	var out []cluster.SchedPolicySet
	for _, name := range strings.Split(names, ",") {
		ps, err := cluster.ParseSchedPolicySet(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, ps)
	}
	return out, nil
}

// runDJSB generates a randomized DJSB-style stream and compares the
// requested policies on it.
func runDJSB(seed int64, jobs int, interarrival float64, nodes int, policy string) error {
	policies, err := parsePolicies(policy)
	if err != nil {
		return err
	}
	p := djsb.Params{Seed: seed, Jobs: jobs, MeanInterarrival: interarrival, Nodes: nodes}
	fmt.Printf("=== DJSB stream: seed=%d jobs=%d mean-interarrival=%.0fs nodes=%d ===\n",
		seed, jobs, interarrival, nodes)
	for _, pol := range policies {
		rep, err := djsb.Run(p, pol)
		if err != nil {
			return err
		}
		fmt.Println(rep)
	}
	return nil
}

func buildScenario(name, simName string, simConf int, anaName string, anaConf int, traced bool) (cluster.Scenario, error) {
	switch name {
	case "uc2":
		return cluster.UC2(traced), nil
	case "uc1":
		simCfgs := cluster.Table1(simName)
		if simCfgs == nil {
			return cluster.Scenario{}, fmt.Errorf("unknown simulator %q", simName)
		}
		if simConf < 1 || simConf > len(simCfgs) {
			return cluster.Scenario{}, fmt.Errorf("%s has configurations 1..%d", simName, len(simCfgs))
		}
		anaCfgs := cluster.Table1(anaName)
		if anaCfgs == nil {
			return cluster.Scenario{}, fmt.Errorf("unknown analytics %q", anaName)
		}
		if anaConf < 1 || anaConf > len(anaCfgs) {
			return cluster.Scenario{}, fmt.Errorf("%s has configurations 1..%d", anaName, len(anaCfgs))
		}
		return cluster.UC1(simName, simCfgs[simConf-1], anaName, anaCfgs[anaConf-1], traced), nil
	default:
		return cluster.Scenario{}, fmt.Errorf("unknown scenario %q (uc1 or uc2)", name)
	}
}

func parsePolicies(p string) ([]cluster.Policy, error) {
	switch p {
	case "serial":
		return []cluster.Policy{cluster.Serial}, nil
	case "drom":
		return []cluster.Policy{cluster.DROM}, nil
	case "oversubscribe":
		return []cluster.Policy{cluster.Oversubscribe}, nil
	case "preempt":
		return []cluster.Policy{cluster.Preempt}, nil
	case "both":
		return []cluster.Policy{cluster.Serial, cluster.DROM}, nil
	case "all":
		return []cluster.Policy{cluster.Serial, cluster.DROM, cluster.Oversubscribe, cluster.Preempt}, nil
	}
	return nil, fmt.Errorf("unknown policy %q", p)
}
