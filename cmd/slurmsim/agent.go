package main

// DROM agent mode: slurmsim becomes one half of a real two-OS-process
// DROM exchange. It opens (or creates) a file-backed segment, registers
// itself with the full node mask, and polls DROM in wall-clock time
// until an external administrator — dromctl attached to the same
// directory from another process — stages a mask change. The applied
// change is printed and the agent exits 0, which is exactly what the CI
// cross-process smoke asserts.

import (
	"errors"
	"fmt"
	"time"

	"repro/dlb"
	"repro/internal/derr"
	"repro/internal/shmem"
)

// agentPollInterval is the wall-clock DROM polling period of the agent
// process (a real application polls at its safe points; 5ms keeps the
// smoke test fast without spinning).
const agentPollInterval = 5 * time.Millisecond

// agentLinger is how long the agent stays registered after applying a
// mask change, so a synchronous administrator in another process can
// observe the applied entry before finalization removes it.
const agentLinger = 500 * time.Millisecond

func runDromAgent(dir, node string, ncpus int, timeout time.Duration) error {
	fb, err := shmem.NewFileBackend(dir)
	if err != nil {
		return fmt.Errorf("drom-agent: %w", err)
	}
	defer fb.Close()
	n, err := dlb.NewNodeReg(node, ncpus, shmem.NewRegistryWith(fb))
	if err != nil {
		return fmt.Errorf("drom-agent: open segment: %w", err)
	}
	p, err := dlb.Init(n, 0, n.AllCPUs(), "--drom")
	if err != nil {
		return fmt.Errorf("drom-agent: DLB_Init: %w", err)
	}
	defer p.Finalize()
	fmt.Printf("drom-agent: registered pid %d on %s/%s.seg mask %s (%d CPUs)\n",
		p.PID(), dir, node, p.Mask(), p.NumCPUs())

	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ncpus, mask, ok, err := p.PollDROM()
		if err != nil {
			if errors.Is(err, derr.ErrNoProc) {
				// Our own registration vanished from the segment. Nothing
				// in-process can do that after a successful Init — it
				// means an external actor unregistered this PID, most
				// likely another agent that allocated the same virtual
				// PID because the registry directory was deleted and
				// recreated while processes were still attached (the
				// file-backend analogue of shm_unlink under live users).
				return fmt.Errorf("drom-agent: DLB_PollDROM: %w "+
					"(segment entry vanished: was %s recreated, or pid %d unregistered by another process?)",
					err, dir, p.PID())
			}
			return fmt.Errorf("drom-agent: DLB_PollDROM: %w", err)
		}
		if ok {
			fmt.Printf("drom-agent: mask change applied -> %s (%d CPUs)\n", mask, ncpus)
			// Keep the registration live briefly so a SYNC administrator
			// in another process observes the clean (applied) entry
			// before DLB_Finalize removes it — a real application keeps
			// computing after a poll; exiting instantly is the artifact.
			time.Sleep(agentLinger)
			return nil
		}
		time.Sleep(agentPollInterval)
	}
	return fmt.Errorf("drom-agent: no mask change observed within %s", timeout)
}
