package main

import "testing"

// TestRunEachArtifact executes every artifact generator end to end
// (output goes to stdout; correctness of the numbers is asserted in
// internal/workload — here we guard the CLI wiring).
func TestRunEachArtifact(t *testing.T) {
	ids := []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15"}
	for _, id := range ids {
		if err := run(id); err != nil {
			t.Errorf("run(%q): %v", id, err)
		}
	}
}

func TestRunUnknownIDIsNoop(t *testing.T) {
	if err := run("zzz"); err != nil {
		t.Fatalf("unknown id should be a no-op, got %v", err)
	}
}

func TestExportTracesToTempDir(t *testing.T) {
	outDir = t.TempDir()
	defer func() { outDir = "" }()
	if err := run("fig5"); err != nil {
		t.Fatal(err)
	}
}
