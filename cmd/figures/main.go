// Command figures regenerates every table and figure of the paper's
// evaluation section (§6) from the simulated cluster. Output is
// textual: the same series the paper plots, plus the ASCII trace views
// for the figures that are Paraver screenshots in the paper.
//
// Usage:
//
//	figures             # everything
//	figures -id fig4    # one artifact (table1, fig2..fig15)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/apps"
	"repro/internal/metrics"
	"repro/internal/slurm"
	"repro/internal/version"
	"repro/internal/workload"
)

func main() {
	id := flag.String("id", "", "artifact to regenerate (table1, fig2..fig15); empty = all")
	out := flag.String("out", "", "directory to additionally write trace files (.csv and Paraver .prv) for fig5/fig13")
	svg := flag.String("svg", "", "directory to additionally write SVG renderings of the figures")
	showVersion := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}
	outDir = *out
	svgDir = *svg
	if err := run(*id); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}

// outDir, when set, receives trace exports; svgDir receives SVGs.
var outDir, svgDir string

// writeSVG stores one rendered figure.
func writeSVG(name, svg string) error {
	if svgDir == "" {
		return nil
	}
	if err := os.MkdirAll(svgDir, 0o755); err != nil {
		return err
	}
	p := filepath.Join(svgDir, name+".svg")
	if err := os.WriteFile(p, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("(svg written: %s)\n\n", p)
	return nil
}

// printFig prints a bar figure and optionally renders it.
func printFig(name string, f workload.FigureData) error {
	fmt.Println(f)
	return writeSVG(name, f.Chart().SVG())
}

// exportTraces writes the CSV and Paraver forms of a traced result.
func exportTraces(name string, res workload.Result) error {
	if outDir == "" || res.Tracer == nil {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	csvPath := filepath.Join(outDir, name+".csv")
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	if err := res.Tracer.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	write := func(ext string, fn func(io.Writer) error) (string, error) {
		p := filepath.Join(outDir, name+ext)
		f, err := os.Create(p)
		if err != nil {
			return "", err
		}
		if err := fn(f); err != nil {
			f.Close()
			return "", err
		}
		return p, f.Close()
	}
	prvPath, err := write(".prv", res.Tracer.WritePRV)
	if err != nil {
		return err
	}
	if _, err := write(".pcf", res.Tracer.WritePCF); err != nil {
		return err
	}
	if _, err := write(".row", res.Tracer.WriteROW); err != nil {
		return err
	}
	fmt.Printf("(traces written: %s, %s + .pcf/.row)\n\n", csvPath, prvPath)
	return nil
}

func run(id string) error {
	all := id == ""
	want := func(k string) bool { return all || id == k }

	if want("table1") {
		fmt.Println(workload.Table1Data())
	}
	if want("fig2") {
		if err := figure2(); err != nil {
			return err
		}
	}
	if want("fig3") {
		if err := figure3(); err != nil {
			return err
		}
	}
	if want("fig4") {
		f, err := workload.Figure4()
		if err != nil {
			return err
		}
		if err := printFig("fig4", f); err != nil {
			return err
		}
	}
	if want("fig5") {
		res, f, err := workload.Figure5()
		if err != nil {
			return err
		}
		fmt.Println(f)
		fmt.Println(res.Tracer.RenderTimeline("nest", 72, "util"))
		if err := exportTraces("fig5", res); err != nil {
			return err
		}
		if err := writeSVG("fig5-timeline",
			workload.TimelineGantt(res.Tracer, "Figure 5: NEST thread utilization (DROM)", 240).SVG()); err != nil {
			return err
		}
	}
	if want("fig6") {
		f, err := workload.Figure6()
		if err != nil {
			return err
		}
		if err := printFig("fig6", f); err != nil {
			return err
		}
	}
	if want("fig7") {
		rt, resp, err := workload.Figure7()
		if err != nil {
			return err
		}
		if err := printFig("fig7-runtime", rt); err != nil {
			return err
		}
		if err := printFig("fig7-response", resp); err != nil {
			return err
		}
	}
	if want("fig8") {
		f, err := workload.Figure8()
		if err != nil {
			return err
		}
		if err := printFig("fig8", f); err != nil {
			return err
		}
	}
	if want("fig9") {
		f, err := workload.Figure9()
		if err != nil {
			return err
		}
		if err := printFig("fig9", f); err != nil {
			return err
		}
	}
	if want("fig10") {
		f, err := workload.Figure10()
		if err != nil {
			return err
		}
		if err := printFig("fig10", f); err != nil {
			return err
		}
	}
	if want("fig11") {
		rt, resp, err := workload.Figure11()
		if err != nil {
			return err
		}
		if err := printFig("fig11-runtime", rt); err != nil {
			return err
		}
		if err := printFig("fig11-response", resp); err != nil {
			return err
		}
	}
	if want("fig12") {
		f, err := workload.Figure12()
		if err != nil {
			return err
		}
		if err := printFig("fig12", f); err != nil {
			return err
		}
	}
	if want("fig13") || want("fig14") {
		serial, drom, fig13, err := workload.Figure13()
		if err != nil {
			return err
		}
		if want("fig13") {
			fmt.Println(fig13)
			fmt.Println("Serial scenario (cycles/µs):")
			fmt.Println(serial.Tracer.RenderTimeline("", 72, "cycles"))
			fmt.Println("DROM scenario (cycles/µs):")
			fmt.Println(drom.Tracer.RenderTimeline("", 72, "cycles"))
			if err := exportTraces("fig13-serial", serial); err != nil {
				return err
			}
			if err := exportTraces("fig13-drom", drom); err != nil {
				return err
			}
			if err := writeSVG("fig13-serial-timeline",
				workload.TimelineGantt(serial.Tracer, "Figure 13: UC2 Serial", 240).SVG()); err != nil {
				return err
			}
			if err := writeSVG("fig13-drom-timeline",
				workload.TimelineGantt(drom.Tracer, "Figure 13: UC2 DROM", 240).SVG()); err != nil {
				return err
			}
		}
		if want("fig14") {
			fmt.Println(workload.Figure14(serial, drom))
		}
	}
	if want("fig15") {
		f, err := workload.Figure15()
		if err != nil {
			return err
		}
		if err := printFig("fig15", f); err != nil {
			return err
		}
	}
	return nil
}

// figure2 narrates the SLURM launch protocol on a live mini-run.
func figure2() error {
	fmt.Println("== Figure 2: SLURM job launch procedure for DROM malleable applications ==")
	s := workload.Scenario{
		Name:        "fig2",
		Nodes:       2,
		LogProtocol: true,
		Subs: []workload.Submission{
			{Job: slurm.Job{Name: "job1", Spec: apps.Pils(), Cfg: apps.Config{Ranks: 2, Threads: 16},
				Iters: 400, Nodes: 2, Malleable: true}},
			{At: 50, Job: slurm.Job{Name: "job2", Spec: apps.Pils(), Cfg: apps.Config{Ranks: 4, Threads: 4},
				Iters: 100, Nodes: 2, Malleable: true}},
		},
	}
	res := workload.Run(s, slurm.PolicyDROM)
	if res.Err != nil {
		return res.Err
	}
	fmt.Println("protocol events recorded by the DROM-enabled slurmd/slurmstepd:")
	for _, e := range res.Protocol {
		fmt.Println("  " + e.String())
	}
	fmt.Println("(job1 applies staged shrinks at its next DLB_PollDROM safe point,")
	fmt.Println(" and re-expands after job2's post_term/release_resources)")
	for _, j := range res.Records.Jobs {
		fmt.Printf("  %-6s submit=%6.1f start=%6.1f end=%7.1f response=%7.1f\n",
			j.Name, j.Submit, j.Start, j.End, j.ResponseTime())
	}
	fmt.Println()
	return nil
}

// figure3 renders the UC1 schematic: per-job running-thread counts
// over time under both policies.
func figure3() error {
	fmt.Println("== Figure 3: In-situ analytics schematic (resource shares over time) ==")
	sc := workload.UC1("nest", apps.Config{Ranks: 2, Threads: 16}, "pils", apps.Config{Ranks: 2, Threads: 4}, true)
	for _, pol := range []slurm.Policy{slurm.PolicySerial, slurm.PolicyDROM} {
		res := workload.Run(sc, pol)
		if res.Err != nil {
			return res.Err
		}
		fmt.Printf("--- %s scenario ---\n", pol)
		var s metrics.Series
		s.Label = "end (s)"
		for _, j := range res.Records.Jobs {
			s.Add(j.Name, j.End)
		}
		fmt.Print(metrics.Table(s))
	}
	fmt.Println()
	return nil
}
