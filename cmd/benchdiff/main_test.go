package main

import (
	"strings"
	"testing"
)

const baseDoc = `{
  "sched_replay_100k": {
    "policies": [
      {"policy": "fcfs", "jobs": 100, "sched_cycles": 200, "sim_events": 1000,
       "us_per_cycle": 10.0, "allocs_per_cycle": 12.0, "mean_wait_s": 5.5, "makespan_s": 900}
    ]
  },
  "sched_replay_1m": {
    "replay": {"policy": "fcfs", "jobs": 1000, "sched_cycles": 2000, "sim_events": 9000,
       "us_per_cycle": 9.0, "allocs_per_cycle": 11.0, "mean_wait_s": 1.5, "makespan_s": 8000}
  },
  "sched_spillover": {
    "policies": [
      {"policy": "batch=easy,fat=malleable-shrink", "jobs": 500, "sched_cycles": 900,
       "sim_events": 4000, "us_per_cycle": 8.0, "allocs_per_cycle": 10.0,
       "mean_wait_s": 3.5, "makespan_s": 700, "spilled": 40}
    ]
  }
}`

func TestDiffClean(t *testing.T) {
	findings, _, err := diff([]byte(baseDoc), []byte(baseDoc), 3.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("identical docs produced findings: %v", findings)
	}
}

func TestDiffCatchesDecisionChange(t *testing.T) {
	cand := strings.Replace(baseDoc, `"sched_cycles": 200`, `"sched_cycles": 201`, 1)
	cand = strings.Replace(cand, `"mean_wait_s": 5.5`, `"mean_wait_s": 5.6`, 1)
	findings, _, err := diff([]byte(baseDoc), []byte(cand), 3.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want cycle + wait regressions", findings)
	}
	for _, f := range findings {
		if !strings.Contains(f, "decisions changed") {
			t.Errorf("finding %q should flag a decision change", f)
		}
	}
}

func TestDiffWallToleranceAndAllocs(t *testing.T) {
	// 2x slower: inside the 3x tolerance.
	cand := strings.Replace(baseDoc, `"us_per_cycle": 10.0`, `"us_per_cycle": 20.0`, 1)
	findings, _, err := diff([]byte(baseDoc), []byte(cand), 3.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("2x slowdown within tolerance flagged: %v", findings)
	}
	// 4x slower: out.
	cand = strings.Replace(baseDoc, `"us_per_cycle": 10.0`, `"us_per_cycle": 40.0`, 1)
	findings, _, _ = diff([]byte(baseDoc), []byte(cand), 3.0, 0)
	if len(findings) != 1 || !strings.Contains(findings[0], "us_per_cycle") {
		t.Fatalf("4x slowdown not flagged: %v", findings)
	}
	// Allocation regression.
	cand = strings.Replace(baseDoc, `"allocs_per_cycle": 12.0`, `"allocs_per_cycle": 40.0`, 1)
	findings, _, _ = diff([]byte(baseDoc), []byte(cand), 3.0, 0)
	if len(findings) != 1 || !strings.Contains(findings[0], "allocs_per_cycle") {
		t.Fatalf("alloc regression not flagged: %v", findings)
	}
}

func TestDiffMissingPolicyAndSections(t *testing.T) {
	cand := strings.Replace(baseDoc, `"policy": "fcfs", "jobs": 100`, `"policy": "easy", "jobs": 100`, 1)
	findings, _, err := diff([]byte(baseDoc), []byte(cand), 3.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range findings {
		if strings.Contains(f, "missing from candidate") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing policy not flagged: %v", findings)
	}
	// A candidate with only one section compares just that section.
	only100k := `{"sched_replay_100k": {"policies": [
      {"policy": "fcfs", "jobs": 100, "sched_cycles": 200, "sim_events": 1000,
       "us_per_cycle": 10.0, "allocs_per_cycle": 12.0, "mean_wait_s": 5.5, "makespan_s": 900}]}}`
	findings, _, err = diff([]byte(baseDoc), []byte(only100k), 3.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("partial candidate should compare cleanly: %v", findings)
	}
}

func TestDiffCatchesSpillChange(t *testing.T) {
	cand := strings.Replace(baseDoc, `"spilled": 40`, `"spilled": 41`, 1)
	findings, _, err := diff([]byte(baseDoc), []byte(cand), 3.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "spilled") {
		t.Fatalf("spill-count change not flagged: %v", findings)
	}
	if !strings.Contains(findings[0], "sched_spillover") {
		t.Fatalf("finding %q should name the spillover section", findings[0])
	}
}

// obsDoc extends baseDoc with a sched_obs section whose probed replay
// matches the plain fcfs 100k entry (so the cross-check is clean).
const obsDoc = `{
  "sched_replay_100k": {
    "policies": [
      {"policy": "fcfs", "jobs": 100, "sched_cycles": 200, "sim_events": 1000,
       "us_per_cycle": 10.0, "allocs_per_cycle": 12.0, "mean_wait_s": 5.5, "makespan_s": 900}
    ]
  },
  "sched_obs": {
    "probed": {"policy": "fcfs", "jobs": 100, "wall_seconds": 2.0, "sched_cycles": 200,
       "sim_events": 1000, "us_per_cycle": 11.0, "cycle_samples": 200, "schedule_samples": 200,
       "cycle_p50_us": 2.0, "cycle_p99_us": 65.5, "cycle_max_us": 290.0,
       "sched_p50_us": 0.3, "sched_p99_us": 1.0}
  }
}`

func TestDiffWarnPctBothSides(t *testing.T) {
	// 20% slower with a 25% threshold: silent.
	cand := strings.Replace(baseDoc, `"us_per_cycle": 10.0`, `"us_per_cycle": 12.0`, 1)
	findings, warnings, err := diff([]byte(baseDoc), []byte(cand), 3.0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 || len(warnings) != 0 {
		t.Fatalf("20%% drift under a 25%% threshold flagged: findings=%v warnings=%v", findings, warnings)
	}
	// 40% slower: a warning, never a finding (inside the 3x hard tolerance).
	cand = strings.Replace(baseDoc, `"us_per_cycle": 10.0`, `"us_per_cycle": 14.0`, 1)
	findings, warnings, err = diff([]byte(baseDoc), []byte(cand), 3.0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("soft drift must not produce findings: %v", findings)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "us_per_cycle") || !strings.Contains(warnings[0], "+40.0%") {
		t.Fatalf("warnings = %v, want one +40%% us_per_cycle warning", warnings)
	}
	// 40% FASTER warns too: the benchmark stopped measuring what it used to.
	cand = strings.Replace(baseDoc, `"us_per_cycle": 10.0`, `"us_per_cycle": 6.0`, 1)
	_, warnings, _ = diff([]byte(baseDoc), []byte(cand), 3.0, 25)
	if len(warnings) != 1 || !strings.Contains(warnings[0], "-40.0%") {
		t.Fatalf("warnings = %v, want one -40%% warning", warnings)
	}
	// warnPct 0 disables the soft gate entirely.
	_, warnings, _ = diff([]byte(baseDoc), []byte(cand), 3.0, 0)
	if len(warnings) != 0 {
		t.Fatalf("warn-pct 0 should disable warnings: %v", warnings)
	}
}

func TestDiffObsExactFields(t *testing.T) {
	findings, warnings, err := diff([]byte(obsDoc), []byte(obsDoc), 3.0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 || len(warnings) != 0 {
		t.Fatalf("identical obs docs flagged: findings=%v warnings=%v", findings, warnings)
	}
	// Each deterministic obs field is exact-diffed. The old strings are
	// anchored with neighbors unique to the probed entry so the
	// replacement cannot hit the plain replay section's copy.
	for field, repl := range map[string][2]string{
		"sched_cycles":     {`"wall_seconds": 2.0, "sched_cycles": 200`, `"wall_seconds": 2.0, "sched_cycles": 201`},
		"sim_events":       {`"sim_events": 1000, "us_per_cycle": 11.0`, `"sim_events": 1001, "us_per_cycle": 11.0`},
		"cycle_samples":    {`"cycle_samples": 200`, `"cycle_samples": 201`},
		"schedule_samples": {`"schedule_samples": 200`, `"schedule_samples": 201`},
	} {
		cand := strings.Replace(obsDoc, repl[0], repl[1], 1)
		if cand == obsDoc {
			t.Fatalf("replacement for %s did not apply", field)
		}
		findings, _, err := diff([]byte(obsDoc), []byte(cand), 3.0, 0)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, f := range findings {
			if strings.Contains(f, field) && strings.Contains(f, "sched_obs/fcfs") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s change not flagged in sched_obs: %v", field, findings)
		}
	}
	// Histogram quantiles are recorded only — moving one is silent.
	cand := strings.Replace(obsDoc, `"cycle_p99_us": 65.5`, `"cycle_p99_us": 650.0`, 1)
	findings, warnings, err = diff([]byte(obsDoc), []byte(cand), 3.0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 || len(warnings) != 0 {
		t.Fatalf("quantile drift should be silent: findings=%v warnings=%v", findings, warnings)
	}
}

func TestDiffObsCrossCheck(t *testing.T) {
	// The probed replay diverging from the plain replay of the SAME
	// document means the probes perturbed decisions — flagged even when
	// baseline and candidate agree with each other.
	bad := strings.Replace(obsDoc, `"sched_obs": {
    "probed": {"policy": "fcfs", "jobs": 100, "wall_seconds": 2.0, "sched_cycles": 200,`,
		`"sched_obs": {
    "probed": {"policy": "fcfs", "jobs": 100, "wall_seconds": 2.0, "sched_cycles": 207,`, 1)
	if bad == obsDoc {
		t.Fatal("replacement did not apply")
	}
	findings, _, err := diff([]byte(bad), []byte(bad), 3.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := 0
	for _, f := range findings {
		if strings.Contains(f, "probes perturbed decisions") {
			perturbed++
		}
	}
	if perturbed != 2 { // baseline + candidate are the same bad doc
		t.Fatalf("cross-check findings = %v, want 2 perturbation findings", findings)
	}
}

// shmemDoc extends the plain replay with a sched_shmem section whose
// backend-interface replay matches the plain fcfs 100k entry (so the
// cross-check is clean) plus the per-backend op micro-costs.
const shmemDoc = `{
  "sched_replay_100k": {
    "policies": [
      {"policy": "fcfs", "jobs": 100, "sched_cycles": 200, "sim_events": 1000,
       "us_per_cycle": 10.0, "allocs_per_cycle": 12.0, "mean_wait_s": 5.5, "makespan_s": 900}
    ]
  },
  "sched_shmem": {
    "replay": {"policy": "fcfs", "jobs": 100, "sched_cycles": 200, "sim_events": 1000,
       "us_per_cycle": 11.0, "allocs_per_cycle": 13.0, "mean_wait_s": 5.5, "makespan_s": 900},
    "backends": [
      {"backend": "mem", "ops": 100000, "us_per_op": 0.3},
      {"backend": "file", "ops": 2000, "us_per_op": 100.0}
    ]
  }
}`

func TestDiffShmemSection(t *testing.T) {
	findings, warnings, err := diff([]byte(shmemDoc), []byte(shmemDoc), 3.0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 || len(warnings) != 0 {
		t.Fatalf("identical shmem docs flagged: findings=%v warnings=%v", findings, warnings)
	}
	// A changed op count is a hard finding; a >tolerance op slowdown too.
	cand := strings.Replace(shmemDoc, `"ops": 2000`, `"ops": 2001`, 1)
	findings, _, _ = diff([]byte(shmemDoc), []byte(cand), 3.0, 0)
	if len(findings) != 1 || !strings.Contains(findings[0], "sched_shmem/ops/file") {
		t.Fatalf("op-count change not flagged: %v", findings)
	}
	cand = strings.Replace(shmemDoc, `"us_per_op": 0.3`, `"us_per_op": 1.2`, 1)
	findings, _, _ = diff([]byte(shmemDoc), []byte(cand), 3.0, 0)
	if len(findings) != 1 || !strings.Contains(findings[0], "us_per_op") {
		t.Fatalf("4x op slowdown not flagged: %v", findings)
	}
	// A backend disappearing from the candidate is a hard finding.
	cand = strings.Replace(shmemDoc, `"backend": "file"`, `"backend": "file2"`, 1)
	findings, _, _ = diff([]byte(shmemDoc), []byte(cand), 3.0, 0)
	found := false
	for _, f := range findings {
		found = found || strings.Contains(f, `backend "file" missing`)
	}
	if !found {
		t.Fatalf("missing backend not flagged: %v", findings)
	}
}

func TestDiffShmemCrossCheck(t *testing.T) {
	// The backend-interface replay diverging from the plain replay of
	// the SAME document means the interface changed decisions.
	bad := strings.Replace(shmemDoc,
		`"replay": {"policy": "fcfs", "jobs": 100, "sched_cycles": 200,`,
		`"replay": {"policy": "fcfs", "jobs": 100, "sched_cycles": 209,`, 1)
	if bad == shmemDoc {
		t.Fatal("replacement did not apply")
	}
	findings, _, err := diff([]byte(bad), []byte(bad), 3.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	diverged := 0
	for _, f := range findings {
		if strings.Contains(f, "backend changed decisions") {
			diverged++
		}
	}
	if diverged != 2 { // baseline + candidate are the same bad doc
		t.Fatalf("cross-check findings = %v, want 2 divergence findings", findings)
	}
	// An interface replay slower than tolerance x the plain replay, or
	// allocating where the plain replay does not, fails even when both
	// documents agree.
	slow := strings.Replace(shmemDoc, `"us_per_cycle": 11.0`, `"us_per_cycle": 31.0`, 1)
	findings, _, _ = diff([]byte(slow), []byte(slow), 3.0, 0)
	if len(findings) != 2 || !strings.Contains(findings[0], "indirection is not free") {
		t.Fatalf("indirection slowdown not flagged: %v", findings)
	}
	leaky := strings.Replace(shmemDoc, `"allocs_per_cycle": 13.0`, `"allocs_per_cycle": 50.0`, 1)
	findings, _, _ = diff([]byte(leaky), []byte(leaky), 3.0, 0)
	if len(findings) != 2 || !strings.Contains(findings[0], "indirection allocates") {
		t.Fatalf("indirection alloc regression not flagged: %v", findings)
	}
}
