package main

import (
	"strings"
	"testing"
)

const baseDoc = `{
  "sched_replay_100k": {
    "policies": [
      {"policy": "fcfs", "jobs": 100, "sched_cycles": 200, "sim_events": 1000,
       "us_per_cycle": 10.0, "allocs_per_cycle": 12.0, "mean_wait_s": 5.5, "makespan_s": 900}
    ]
  },
  "sched_replay_1m": {
    "replay": {"policy": "fcfs", "jobs": 1000, "sched_cycles": 2000, "sim_events": 9000,
       "us_per_cycle": 9.0, "allocs_per_cycle": 11.0, "mean_wait_s": 1.5, "makespan_s": 8000}
  },
  "sched_spillover": {
    "policies": [
      {"policy": "batch=easy,fat=malleable-shrink", "jobs": 500, "sched_cycles": 900,
       "sim_events": 4000, "us_per_cycle": 8.0, "allocs_per_cycle": 10.0,
       "mean_wait_s": 3.5, "makespan_s": 700, "spilled": 40}
    ]
  }
}`

func TestDiffClean(t *testing.T) {
	findings, err := diff([]byte(baseDoc), []byte(baseDoc), 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("identical docs produced findings: %v", findings)
	}
}

func TestDiffCatchesDecisionChange(t *testing.T) {
	cand := strings.Replace(baseDoc, `"sched_cycles": 200`, `"sched_cycles": 201`, 1)
	cand = strings.Replace(cand, `"mean_wait_s": 5.5`, `"mean_wait_s": 5.6`, 1)
	findings, err := diff([]byte(baseDoc), []byte(cand), 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want cycle + wait regressions", findings)
	}
	for _, f := range findings {
		if !strings.Contains(f, "decisions changed") {
			t.Errorf("finding %q should flag a decision change", f)
		}
	}
}

func TestDiffWallToleranceAndAllocs(t *testing.T) {
	// 2x slower: inside the 3x tolerance.
	cand := strings.Replace(baseDoc, `"us_per_cycle": 10.0`, `"us_per_cycle": 20.0`, 1)
	findings, err := diff([]byte(baseDoc), []byte(cand), 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("2x slowdown within tolerance flagged: %v", findings)
	}
	// 4x slower: out.
	cand = strings.Replace(baseDoc, `"us_per_cycle": 10.0`, `"us_per_cycle": 40.0`, 1)
	findings, _ = diff([]byte(baseDoc), []byte(cand), 3.0)
	if len(findings) != 1 || !strings.Contains(findings[0], "us_per_cycle") {
		t.Fatalf("4x slowdown not flagged: %v", findings)
	}
	// Allocation regression.
	cand = strings.Replace(baseDoc, `"allocs_per_cycle": 12.0`, `"allocs_per_cycle": 40.0`, 1)
	findings, _ = diff([]byte(baseDoc), []byte(cand), 3.0)
	if len(findings) != 1 || !strings.Contains(findings[0], "allocs_per_cycle") {
		t.Fatalf("alloc regression not flagged: %v", findings)
	}
}

func TestDiffMissingPolicyAndSections(t *testing.T) {
	cand := strings.Replace(baseDoc, `"policy": "fcfs", "jobs": 100`, `"policy": "easy", "jobs": 100`, 1)
	findings, err := diff([]byte(baseDoc), []byte(cand), 3.0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range findings {
		if strings.Contains(f, "missing from candidate") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing policy not flagged: %v", findings)
	}
	// A candidate with only one section compares just that section.
	only100k := `{"sched_replay_100k": {"policies": [
      {"policy": "fcfs", "jobs": 100, "sched_cycles": 200, "sim_events": 1000,
       "us_per_cycle": 10.0, "allocs_per_cycle": 12.0, "mean_wait_s": 5.5, "makespan_s": 900}]}}`
	findings, err = diff([]byte(baseDoc), []byte(only100k), 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("partial candidate should compare cleanly: %v", findings)
	}
}

func TestDiffCatchesSpillChange(t *testing.T) {
	cand := strings.Replace(baseDoc, `"spilled": 40`, `"spilled": 41`, 1)
	findings, err := diff([]byte(baseDoc), []byte(cand), 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "spilled") {
		t.Fatalf("spill-count change not flagged: %v", findings)
	}
	if !strings.Contains(findings[0], "sched_spillover") {
		t.Fatalf("finding %q should name the spillover section", findings[0])
	}
}
