// Command benchdiff compares two BENCH_sched.json files — the
// committed baseline and a freshly generated candidate — and fails
// when the candidate regresses.
//
// Replay outcomes that must not change at all (job counts, scheduling
// cycles, simulation events, mean wait, makespan, spill, requeue and
// node-failure tallies) are compared
// exactly: they are deterministic, so any difference means the
// scheduler's decisions changed. Wall-clock derived numbers
// (us_per_cycle) are machine-dependent and only fail when the
// candidate is slower than baseline × tolerance; allocation counts
// per cycle are nearly deterministic and get a tight factor.
//
// A second, softer gate covers the timing fields that are expected to
// move between machines and runs: -warn-pct emits a warning (exit
// status unaffected) when wall_seconds or us_per_cycle deviates from
// baseline by more than the given percentage in either direction —
// loud enough to notice creeping drift, quiet enough not to flake CI.
//
// The sched_obs section (the probes-enabled replay) is compared like
// the others: its deterministic outcomes — jobs, cycles, events,
// histogram sample counts — diff exactly, and are additionally
// cross-checked against the plain 100k replay of the same document,
// proving the attached probes did not perturb a single decision.
//
// The sched_schedd section (the what-if service benchmark) splits the
// same way: the prediction aggregates (answered count, mean predicted
// start/wait at a fixed fork point) are deterministic and diff
// exactly — a drift means simulation forking stopped being
// decision-invisible — while the query latency fields fall under the
// tolerance factor (p99_ms) and the -warn-pct soft gate.
//
// The sched_shmem section pins the shmem.Backend interface: its
// replay entry (the 100k fcfs replay through the in-memory backend)
// is cross-checked against the plain sched_replay_100k entry of the
// same document — identical deterministic outcomes, us_per_cycle
// within the tolerance factor and allocs_per_cycle within the alloc
// gate — so the interface indirection demonstrably costs nothing on
// the replay hot path. Its per-backend DROM op micro-costs diff with
// exact op counts and tolerance-gated us_per_op.
//
// Usage:
//
//	benchdiff [-tolerance 3.0] [-warn-pct 25] baseline.json candidate.json
package main

import (
	"repro/internal/benchfmt"
	"repro/internal/version"

	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// replayEntry and benchDoc come from the shared schema package, so
// the JSON tags cannot drift from what the bench harness writes.
type replayEntry = benchfmt.ReplayEntry

type benchDoc = benchfmt.Doc

// diff returns the regression findings (hard failures) and warnings
// (soft timing drift beyond warnPct, in percent; 0 disables) between
// baseline and candidate.
func diff(baseline, candidate []byte, tolerance, warnPct float64) (findings, warnings []string, err error) {
	var base, cand benchDoc
	if err := json.Unmarshal(baseline, &base); err != nil {
		return nil, nil, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(candidate, &cand); err != nil {
		return nil, nil, fmt.Errorf("candidate: %w", err)
	}
	add := func(format string, args ...interface{}) {
		findings = append(findings, fmt.Sprintf(format, args...))
	}
	// warn flags |candidate-baseline| > warnPct% of baseline, both
	// directions: a surprise speed-up usually means the benchmark
	// stopped measuring what it used to.
	warn := func(name, field string, b, c float64) {
		if warnPct <= 0 || b <= 0 {
			return
		}
		if dev := (c - b) / b * 100; dev > warnPct || dev < -warnPct {
			warnings = append(warnings, fmt.Sprintf("%s: %s %.3g deviates %+.1f%% from baseline %.3g (warn threshold %.0f%%)",
				name, field, c, dev, b, warnPct))
		}
	}
	compare := func(name string, b, c replayEntry) {
		if c.Jobs != b.Jobs {
			add("%s: jobs %d, baseline %d", name, c.Jobs, b.Jobs)
		}
		if c.Spilled != b.Spilled {
			add("%s: spilled %d, baseline %d (decisions changed)", name, c.Spilled, b.Spilled)
		}
		if c.Requeues != b.Requeues {
			add("%s: requeues %d, baseline %d (decisions changed)", name, c.Requeues, b.Requeues)
		}
		if c.NodeFailed != b.NodeFailed {
			add("%s: node_failed %d, baseline %d (decisions changed)", name, c.NodeFailed, b.NodeFailed)
		}
		if c.DownNodeS != b.DownNodeS {
			add("%s: down_node_s %g, baseline %g (decisions changed)", name, c.DownNodeS, b.DownNodeS)
		}
		if c.Cycles != b.Cycles {
			add("%s: sched_cycles %d, baseline %d (decisions changed)", name, c.Cycles, b.Cycles)
		}
		if c.Events != b.Events {
			add("%s: sim_events %d, baseline %d (decisions changed)", name, c.Events, b.Events)
		}
		if c.MeanWaitS != b.MeanWaitS {
			add("%s: mean_wait_s %g, baseline %g (decisions changed)", name, c.MeanWaitS, b.MeanWaitS)
		}
		if c.MakespanS != b.MakespanS {
			add("%s: makespan_s %g, baseline %g (decisions changed)", name, c.MakespanS, b.MakespanS)
		}
		if b.CycleMicros > 0 && c.CycleMicros > b.CycleMicros*tolerance {
			add("%s: us_per_cycle %.2f exceeds baseline %.2f x %.1f", name, c.CycleMicros, b.CycleMicros, tolerance)
		}
		// Allocation counts barely vary between runs; a jump means a
		// hot-path allocation crept back in.
		if b.AllocsPerCycle > 0 && c.AllocsPerCycle > b.AllocsPerCycle*1.5+5 {
			add("%s: allocs_per_cycle %.1f exceeds baseline %.1f x 1.5", name, c.AllocsPerCycle, b.AllocsPerCycle)
		}
		warn(name, "us_per_cycle", b.CycleMicros, c.CycleMicros)
		warn(name, "wall_seconds", b.WallSeconds, c.WallSeconds)
	}
	compareObs := func(name string, b, c benchfmt.ObsEntry) {
		if c.Jobs != b.Jobs {
			add("%s: jobs %d, baseline %d", name, c.Jobs, b.Jobs)
		}
		if c.Cycles != b.Cycles {
			add("%s: sched_cycles %d, baseline %d (decisions changed)", name, c.Cycles, b.Cycles)
		}
		if c.Events != b.Events {
			add("%s: sim_events %d, baseline %d (decisions changed)", name, c.Events, b.Events)
		}
		if c.CycleSamples != b.CycleSamples {
			add("%s: cycle_samples %d, baseline %d (probe coverage changed)", name, c.CycleSamples, b.CycleSamples)
		}
		if c.SchedSamples != b.SchedSamples {
			add("%s: schedule_samples %d, baseline %d (probe coverage changed)", name, c.SchedSamples, b.SchedSamples)
		}
		if b.CycleMicros > 0 && c.CycleMicros > b.CycleMicros*tolerance {
			add("%s: us_per_cycle %.2f exceeds baseline %.2f x %.1f", name, c.CycleMicros, b.CycleMicros, tolerance)
		}
		warn(name, "us_per_cycle", b.CycleMicros, c.CycleMicros)
		warn(name, "wall_seconds", b.WallSeconds, c.WallSeconds)
	}
	compareSchedD := func(name string, b, c benchfmt.SchedDEntry) {
		if c.Jobs != b.Jobs {
			add("%s: jobs %d, baseline %d", name, c.Jobs, b.Jobs)
		}
		if c.Queries != b.Queries {
			add("%s: queries %d, baseline %d", name, c.Queries, b.Queries)
		}
		if c.Answered != b.Answered {
			add("%s: answered %d, baseline %d (predictions changed)", name, c.Answered, b.Answered)
		}
		if c.ForkedAt != b.ForkedAt {
			add("%s: forked_at %g, baseline %g (fork point moved)", name, c.ForkedAt, b.ForkedAt)
		}
		if c.MeanStartS != b.MeanStartS {
			add("%s: mean_predicted_start_s %g, baseline %g (predictions changed)", name, c.MeanStartS, b.MeanStartS)
		}
		if c.MeanWaitS != b.MeanWaitS {
			add("%s: mean_predicted_wait_s %g, baseline %g (predictions changed)", name, c.MeanWaitS, b.MeanWaitS)
		}
		if b.P99Ms > 0 && c.P99Ms > b.P99Ms*tolerance {
			add("%s: p99_ms %.2f exceeds baseline %.2f x %.1f", name, c.P99Ms, b.P99Ms, tolerance)
		}
		warn(name, "mean_ms", b.MeanMs, c.MeanMs)
		warn(name, "wall_seconds", b.WallSeconds, c.WallSeconds)
	}
	// crossCheckObs proves the probes are decision-preserving inside a
	// single document: the probed replay must reach the same outcomes
	// as the plain replay of the same trace and policy.
	crossCheckObs := func(who string, doc benchDoc) {
		if doc.Obs == nil || doc.Replay100k == nil {
			return
		}
		o := doc.Obs.Probed
		for _, p := range doc.Replay100k.Policies {
			if p.Policy != o.Policy {
				continue
			}
			if o.Jobs != p.Jobs || o.Cycles != p.Cycles || o.Events != p.Events {
				add("%s sched_obs: probed replay (jobs=%d cycles=%d events=%d) diverges from plain sched_replay_100k/%s (jobs=%d cycles=%d events=%d) — probes perturbed decisions",
					who, o.Jobs, o.Cycles, o.Events, p.Policy, p.Jobs, p.Cycles, p.Events)
			}
			return
		}
	}
	// crossCheckShmem proves the backend interface is free inside a
	// single document: the replay driven through the explicit backend
	// must reach the same outcomes as the plain replay of the same
	// trace and policy, at the same per-cycle cost and heap traffic.
	crossCheckShmem := func(who string, doc benchDoc) {
		if doc.Shmem == nil || doc.Replay100k == nil {
			return
		}
		s := doc.Shmem.Replay
		for _, p := range doc.Replay100k.Policies {
			if p.Policy != s.Policy {
				continue
			}
			if s.Jobs != p.Jobs || s.Cycles != p.Cycles || s.Events != p.Events ||
				s.MeanWaitS != p.MeanWaitS || s.MakespanS != p.MakespanS {
				add("%s sched_shmem: backend replay (jobs=%d cycles=%d events=%d wait=%g makespan=%g) diverges from plain sched_replay_100k/%s (jobs=%d cycles=%d events=%d wait=%g makespan=%g) — backend changed decisions",
					who, s.Jobs, s.Cycles, s.Events, s.MeanWaitS, s.MakespanS,
					p.Policy, p.Jobs, p.Cycles, p.Events, p.MeanWaitS, p.MakespanS)
			}
			if p.CycleMicros > 0 && s.CycleMicros > p.CycleMicros*tolerance {
				add("%s sched_shmem: us_per_cycle %.2f exceeds plain replay %.2f x %.1f — backend indirection is not free",
					who, s.CycleMicros, p.CycleMicros, tolerance)
			}
			if s.AllocsPerCycle > p.AllocsPerCycle*1.5+5 {
				add("%s sched_shmem: allocs_per_cycle %.1f exceeds plain replay %.1f — backend indirection allocates on the hot path",
					who, s.AllocsPerCycle, p.AllocsPerCycle)
			}
			return
		}
	}
	compareShmemOps := func(name string, b, c benchfmt.ShmemOpEntry) {
		if c.Ops != b.Ops {
			add("%s: ops %d, baseline %d", name, c.Ops, b.Ops)
		}
		if b.MicrosPerOp > 0 && c.MicrosPerOp > b.MicrosPerOp*tolerance {
			add("%s: us_per_op %.2f exceeds baseline %.2f x %.1f", name, c.MicrosPerOp, b.MicrosPerOp, tolerance)
		}
		warn(name, "us_per_op", b.MicrosPerOp, c.MicrosPerOp)
	}
	comparePolicies := func(section string, base, cand []replayEntry) {
		byName := map[string]replayEntry{}
		for _, e := range cand {
			byName[e.Policy] = e
		}
		for _, b := range base {
			c, ok := byName[b.Policy]
			if !ok {
				add("%s: policy %q missing from candidate", section, b.Policy)
				continue
			}
			compare(section+"/"+b.Policy, b, c)
		}
	}
	if base.Replay100k != nil && cand.Replay100k != nil {
		comparePolicies("sched_replay_100k", base.Replay100k.Policies, cand.Replay100k.Policies)
	}
	if base.Replay1M != nil && cand.Replay1M != nil {
		compare("sched_replay_1m/"+base.Replay1M.Replay.Policy, base.Replay1M.Replay, cand.Replay1M.Replay)
	}
	if base.Spillover != nil && cand.Spillover != nil {
		comparePolicies("sched_spillover", base.Spillover.Policies, cand.Spillover.Policies)
	}
	if base.NodeFaults != nil && cand.NodeFaults != nil {
		comparePolicies("sched_nodefaults", base.NodeFaults.Policies, cand.NodeFaults.Policies)
	}
	if base.Obs != nil && cand.Obs != nil {
		compareObs("sched_obs/"+base.Obs.Probed.Policy, base.Obs.Probed, cand.Obs.Probed)
	}
	if base.SchedD != nil && cand.SchedD != nil {
		compareSchedD("sched_schedd/"+base.SchedD.WhatIf.Policy, base.SchedD.WhatIf, cand.SchedD.WhatIf)
	}
	if base.Shmem != nil && cand.Shmem != nil {
		compare("sched_shmem/"+base.Shmem.Replay.Policy, base.Shmem.Replay, cand.Shmem.Replay)
		byBackend := map[string]benchfmt.ShmemOpEntry{}
		for _, e := range cand.Shmem.Backends {
			byBackend[e.Backend] = e
		}
		for _, be := range base.Shmem.Backends {
			ce, ok := byBackend[be.Backend]
			if !ok {
				add("sched_shmem: backend %q missing from candidate", be.Backend)
				continue
			}
			compareShmemOps("sched_shmem/ops/"+be.Backend, be, ce)
		}
	}
	crossCheckObs("baseline", base)
	crossCheckObs("candidate", cand)
	crossCheckShmem("baseline", base)
	crossCheckShmem("candidate", cand)
	return findings, warnings, nil
}

func main() {
	tolerance := flag.Float64("tolerance", 3.0, "allowed us_per_cycle slowdown factor vs baseline")
	warnPct := flag.Float64("warn-pct", 0, "warn (exit 0) when wall_seconds/us_per_cycle deviate more than this percentage either way; 0 disables")
	showVersion := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance F] [-warn-pct P] baseline.json candidate.json")
		os.Exit(2)
	}
	baseline, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	candidate, err := os.ReadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	findings, warnings, err := diff(baseline, candidate, *tolerance, *warnPct)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	for _, w := range warnings {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: %s\n", w)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) vs %s:\n", len(findings), flag.Arg(0))
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %s matches %s (tolerance %.1fx)\n", flag.Arg(1), flag.Arg(0), *tolerance)
}
