// Command benchdiff compares two BENCH_sched.json files — the
// committed baseline and a freshly generated candidate — and fails
// when the candidate regresses.
//
// Replay outcomes that must not change at all (job counts, scheduling
// cycles, simulation events, mean wait, makespan) are compared
// exactly: they are deterministic, so any difference means the
// scheduler's decisions changed. Wall-clock derived numbers
// (us_per_cycle) are machine-dependent and only fail when the
// candidate is slower than baseline × tolerance; allocation counts
// per cycle are nearly deterministic and get a tight factor.
//
// Usage:
//
//	benchdiff [-tolerance 3.0] baseline.json candidate.json
package main

import (
	"repro/internal/benchfmt"

	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// replayEntry and benchDoc come from the shared schema package, so
// the JSON tags cannot drift from what the bench harness writes.
type replayEntry = benchfmt.ReplayEntry

type benchDoc = benchfmt.Doc

// diff returns the regression findings between baseline and candidate.
func diff(baseline, candidate []byte, tolerance float64) ([]string, error) {
	var base, cand benchDoc
	if err := json.Unmarshal(baseline, &base); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(candidate, &cand); err != nil {
		return nil, fmt.Errorf("candidate: %w", err)
	}
	var findings []string
	add := func(format string, args ...interface{}) {
		findings = append(findings, fmt.Sprintf(format, args...))
	}
	compare := func(name string, b, c replayEntry) {
		if c.Jobs != b.Jobs {
			add("%s: jobs %d, baseline %d", name, c.Jobs, b.Jobs)
		}
		if c.Spilled != b.Spilled {
			add("%s: spilled %d, baseline %d (decisions changed)", name, c.Spilled, b.Spilled)
		}
		if c.Cycles != b.Cycles {
			add("%s: sched_cycles %d, baseline %d (decisions changed)", name, c.Cycles, b.Cycles)
		}
		if c.Events != b.Events {
			add("%s: sim_events %d, baseline %d (decisions changed)", name, c.Events, b.Events)
		}
		if c.MeanWaitS != b.MeanWaitS {
			add("%s: mean_wait_s %g, baseline %g (decisions changed)", name, c.MeanWaitS, b.MeanWaitS)
		}
		if c.MakespanS != b.MakespanS {
			add("%s: makespan_s %g, baseline %g (decisions changed)", name, c.MakespanS, b.MakespanS)
		}
		if b.CycleMicros > 0 && c.CycleMicros > b.CycleMicros*tolerance {
			add("%s: us_per_cycle %.2f exceeds baseline %.2f x %.1f", name, c.CycleMicros, b.CycleMicros, tolerance)
		}
		// Allocation counts barely vary between runs; a jump means a
		// hot-path allocation crept back in.
		if b.AllocsPerCycle > 0 && c.AllocsPerCycle > b.AllocsPerCycle*1.5+5 {
			add("%s: allocs_per_cycle %.1f exceeds baseline %.1f x 1.5", name, c.AllocsPerCycle, b.AllocsPerCycle)
		}
	}
	comparePolicies := func(section string, base, cand []replayEntry) {
		byName := map[string]replayEntry{}
		for _, e := range cand {
			byName[e.Policy] = e
		}
		for _, b := range base {
			c, ok := byName[b.Policy]
			if !ok {
				add("%s: policy %q missing from candidate", section, b.Policy)
				continue
			}
			compare(section+"/"+b.Policy, b, c)
		}
	}
	if base.Replay100k != nil && cand.Replay100k != nil {
		comparePolicies("sched_replay_100k", base.Replay100k.Policies, cand.Replay100k.Policies)
	}
	if base.Replay1M != nil && cand.Replay1M != nil {
		compare("sched_replay_1m/"+base.Replay1M.Replay.Policy, base.Replay1M.Replay, cand.Replay1M.Replay)
	}
	if base.Spillover != nil && cand.Spillover != nil {
		comparePolicies("sched_spillover", base.Spillover.Policies, cand.Spillover.Policies)
	}
	return findings, nil
}

func main() {
	tolerance := flag.Float64("tolerance", 3.0, "allowed us_per_cycle slowdown factor vs baseline")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance F] baseline.json candidate.json")
		os.Exit(2)
	}
	baseline, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	candidate, err := os.ReadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	findings, err := diff(baseline, candidate, *tolerance)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) vs %s:\n", len(findings), flag.Arg(0))
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %s matches %s (tolerance %.1fx)\n", flag.Arg(1), flag.Arg(0), *tolerance)
}
