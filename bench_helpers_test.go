package repro_test

import (
	"testing"

	"repro/dlb"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/cpuset"
	"repro/internal/hwmodel"
	"repro/internal/shmem"
	"repro/internal/sim"
)

// newBenchNode builds a fresh 16-CPU node for live-library benches.
func newBenchNode(b *testing.B) *dlb.Node {
	b.Helper()
	return dlb.NewNode("bench", 16)
}

// nodeInit registers a process with the whole node.
func nodeInit(n *dlb.Node, args string) (*dlb.Process, error) {
	return dlb.Init(n, 0, n.AllCPUs(), args)
}

// maskPair is a two-rank placement on one node.
type maskPair struct{ a, b cpuset.CPUSet }

// compactMaskPair places each rank on its own socket.
func compactMaskPair() maskPair {
	m := hwmodel.MN3()
	return maskPair{a: m.SocketMask(0), b: m.SocketMask(1)}
}

// interleavedMaskPair scatters each rank across both sockets
// (even/odd CPUs): the placement the socket-aware plugin avoids.
func interleavedMaskPair() maskPair {
	var even, odd cpuset.CPUSet
	for c := 0; c < 16; c++ {
		if c%2 == 0 {
			even.Set(c)
		} else {
			odd.Set(c)
		}
	}
	return maskPair{a: even, b: odd}
}

// runPinnedPair runs two single-rank NEST instances concurrently on
// one node with explicit masks and returns the later completion time.
func runPinnedPair(p maskPair) (float64, error) {
	eng := sim.NewEngine()
	m := hwmodel.MN3()
	reg := shmem.NewRegistry()
	sys := core.NewSystem(reg.MustOpen("node0", m.NodeMask(), 0))
	demand := apps.NewDemandTable(m)
	spec := apps.NEST()
	spec.InitSeconds = 0
	var last float64
	for _, mask := range []cpuset.CPUSet{p.a, p.b} {
		pl := []apps.Placement{{Node: "node0", Sys: sys, PID: reg.AllocPID(), InitialMask: mask}}
		inst, err := apps.NewInstance(spec, apps.Config{Ranks: 1, Threads: 8}, 300, "nest", eng, demand, nil, pl)
		if err != nil {
			return 0, err
		}
		inst.OnComplete = func(end float64) {
			if end > last {
				last = end
			}
		}
		if err := inst.Start(); err != nil {
			return 0, err
		}
	}
	eng.Run()
	return last, nil
}
