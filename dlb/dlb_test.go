package dlb_test

import (
	"testing"

	"repro/dlb"
	"repro/drom"
)

func TestListing1Flow(t *testing.T) {
	// The manual integration of §4.4 / Listing 1.
	node := dlb.NewNode("node0", 16)
	p, err := dlb.Init(node, 0, node.AllCPUs(), "--drom")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Finalize()

	if p.NumCPUs() != 16 {
		t.Fatalf("initial cpus = %d", p.NumCPUs())
	}
	// No update pending.
	if _, _, ok, err := p.PollDROM(); ok || err != nil {
		t.Fatalf("clean poll = ok=%v err=%v", ok, err)
	}

	// An administrator shrinks the process.
	admin, err := drom.Attach(node)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Detach()
	if err := admin.SetProcessMask(p.PID(), dlb.CPURange(0, 7), drom.None); err != nil {
		t.Fatal(err)
	}

	n, mask, ok, err := p.PollDROM()
	if err != nil || !ok || n != 8 {
		t.Fatalf("poll after set: n=%d ok=%v err=%v", n, ok, err)
	}
	if !mask.Equal(dlb.CPURange(0, 7)) {
		t.Fatalf("mask = %v", mask)
	}
}

func TestInitValidatesArgs(t *testing.T) {
	node := dlb.NewNode("node0", 8)
	if _, err := dlb.Init(node, 0, node.AllCPUs(), "--no-such-flag"); err == nil {
		t.Fatal("bad args should fail")
	}
}

func TestOnResizeCallbacks(t *testing.T) {
	node := dlb.NewNode("node0", 8)
	p, err := dlb.Init(node, 0, node.AllCPUs(), "--drom")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Finalize()
	var gotN int
	var gotMask dlb.CPUSet
	p.OnResize(func(n int) { gotN = n }, func(m dlb.CPUSet) { gotMask = m })

	admin, _ := drom.Attach(node)
	admin.SetProcessMask(p.PID(), dlb.NewCPUSet(0, 2, 4), drom.None)
	p.PollDROM()
	if gotN != 3 || !gotMask.Equal(dlb.NewCPUSet(0, 2, 4)) {
		t.Fatalf("callbacks got %d / %v", gotN, gotMask)
	}
}

func TestLewiThroughPublicAPI(t *testing.T) {
	node := dlb.NewNode("node0", 8)
	p1, err := dlb.Init(node, 0, dlb.CPURange(0, 3), "--drom --lewi")
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Finalize()
	p2, err := dlb.Init(node, 0, dlb.CPURange(4, 7), "--drom --lewi")
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Finalize()

	kept := p1.IntoBlockingCall()
	if kept.Count() != 1 {
		t.Fatalf("kept = %v", kept)
	}
	got := p2.Borrow()
	if got.Count() != 3 {
		t.Fatalf("borrowed = %v", got)
	}
	p1.OutOfBlockingCall()
	// p2 returns the CPUs at its next poll.
	if _, _, ok, _ := p2.PollDROM(); !ok {
		t.Fatal("reclaim not observed at poll")
	}
	if p2.NumCPUs() != 4 {
		t.Fatalf("p2 cpus after reclaim = %d", p2.NumCPUs())
	}
}

func TestParseCPUSet(t *testing.T) {
	m, err := dlb.ParseCPUSet("0-3,8")
	if err != nil || m.Count() != 5 {
		t.Fatalf("ParseCPUSet = %v, %v", m, err)
	}
	if _, err := dlb.ParseCPUSet("zzz"); err == nil {
		t.Fatal("bad cpulist should fail")
	}
}

func TestRequestResizeAndStats(t *testing.T) {
	node := dlb.NewNode("node0", 16)
	p, _ := dlb.Init(node, 0, dlb.CPURange(0, 7), "--drom")
	defer p.Finalize()
	admin, _ := drom.Attach(node)

	// The application asks for more CPUs (evolving model); the manager
	// grants via a normal mask change.
	if err := p.RequestResize(12); err != nil {
		t.Fatal(err)
	}
	if err := admin.SetProcessMask(p.PID(), dlb.CPURange(0, 11), drom.None); err != nil {
		t.Fatal(err)
	}
	p.PollDROM()
	if p.NumCPUs() != 12 {
		t.Fatalf("cpus = %d", p.NumCPUs())
	}

	// The manager consults the run-time statistics.
	st, err := admin.Stats(p.PID())
	if err != nil {
		t.Fatal(err)
	}
	if st.Polls < 1 || st.MaskChanges != 1 || st.CPUsGained != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFinalizeTwice(t *testing.T) {
	node := dlb.NewNode("node0", 4)
	p, _ := dlb.Init(node, 0, node.AllCPUs(), "")
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := p.Finalize(); err == nil {
		t.Fatal("second Finalize should fail")
	}
}
