// Package dlb is the public application-side API of the DLB library
// reproduction: what a process links against to become malleable
// (§3.1, §4.4 and Listing 1 of the paper). A process initializes
// against its node's DLB system, polls DROM at its safe points (or
// runs in async mode), and reacts to mask changes through callbacks.
//
// The typical manual integration mirrors Listing 1:
//
//	node := dlb.NewNode("node0", 16)
//	p, _ := dlb.Init(node, 0, node.AllCPUs(), "--drom")
//	defer p.Finalize()
//	for i := 0; i < iters; i++ {
//		if n, mask, ok, _ := p.PollDROM(); ok {
//			adjustResources(n, mask)
//		}
//		parallelWork()
//	}
//
// Administrators (resource managers, tools) use the companion package
// repro/drom to change masks from the outside.
package dlb

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpuset"
	"repro/internal/derr"
	"repro/internal/dlbcore"
	"repro/internal/shmem"
)

// CPUSet is the process-mask type of the whole API: a bitset of
// virtual CPUs, the analogue of cpu_set_t.
type CPUSet = cpuset.CPUSet

// NewCPUSet returns a set containing the given CPUs.
func NewCPUSet(cpus ...int) CPUSet { return cpuset.New(cpus...) }

// CPURange returns the set {lo..hi}.
func CPURange(lo, hi int) CPUSet { return cpuset.Range(lo, hi) }

// ParseCPUSet parses a Linux cpulist string such as "0-7,16".
func ParseCPUSet(s string) (CPUSet, error) { return cpuset.Parse(s) }

// PID identifies a virtual process within a node.
type PID = shmem.PID

// Node is one node's DLB environment: the shared-memory segment every
// process and administrator of the node attaches to.
type Node struct {
	name string
	reg  *shmem.Registry
	sys  *core.System
}

// NewNode creates a node with ncpus CPUs (an isolated shared-memory
// namespace).
func NewNode(name string, ncpus int) *Node {
	if ncpus < 1 || ncpus > cpuset.MaxCPUs {
		panic(fmt.Sprintf("dlb: invalid cpu count %d", ncpus))
	}
	n, err := NewNodeReg(name, ncpus, shmem.NewRegistry())
	if err != nil {
		panic(err) // in-memory Open cannot fail
	}
	return n
}

// NewNodeReg creates — or, for a segment another process already
// created, adopts — a node on an explicit shmem registry. With a
// file-backed registry this is how two real OS processes share one
// DROM segment: each builds its own Node over the same directory and
// the flock-protected segment file coordinates them.
func NewNodeReg(name string, ncpus int, reg *shmem.Registry) (*Node, error) {
	if ncpus < 1 || ncpus > cpuset.MaxCPUs {
		return nil, fmt.Errorf("dlb: invalid cpu count %d", ncpus)
	}
	seg, err := reg.Open(name, cpuset.Range(0, ncpus-1), 0)
	if err != nil {
		return nil, err
	}
	return &Node{name: name, reg: reg, sys: core.NewSystem(seg)}, nil
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// AllCPUs returns the node's full CPU set.
func (n *Node) AllCPUs() CPUSet { return n.sys.NodeCPUs() }

// AllocPID returns a fresh virtual PID on this node.
func (n *Node) AllocPID() PID { return n.reg.AllocPID() }

// Internal exposes the underlying DROM system for the repro/drom
// administrator package and for tests. Applications do not need it.
func (n *Node) Internal() *core.System { return n.sys }

// Process is an application's DLB handle (DLB_Init..DLB_Finalize).
type Process struct {
	ctx *dlbcore.Context
	pid PID
}

// Init registers the calling "process" with the node's DLB system.
// pid <= 0 allocates a fresh virtual PID. args is a DLB_ARGS-style
// option string, e.g. "--drom", "--drom --lewi", "--drom --mode=async".
// If a resource manager pre-initialized this PID via DROM_PreInit, the
// reserved mask overrides the supplied one.
func Init(n *Node, pid PID, mask CPUSet, args string) (*Process, error) {
	opts, err := dlbcore.ParseArgs(args)
	if err != nil {
		return nil, err
	}
	if pid <= 0 {
		pid = n.AllocPID()
	}
	ctx, code := dlbcore.Init(n.sys, pid, mask, opts)
	if code.IsError() {
		return nil, code
	}
	return &Process{ctx: ctx, pid: pid}, nil
}

// PID returns the process's virtual PID.
func (p *Process) PID() PID { return p.pid }

// Mask returns the process's current CPU mask.
func (p *Process) Mask() CPUSet { return p.ctx.Mask() }

// NumCPUs returns the current mask size.
func (p *Process) NumCPUs() int { return p.ctx.NumCPUs() }

// PollDROM is DLB_PollDROM (Listing 1): it applies a pending mask
// change if one exists. ok reports whether an update was applied; on
// ok the new CPU count and mask are returned and callbacks have fired.
func (p *Process) PollDROM() (ncpus int, mask CPUSet, ok bool, err error) {
	n, m, code := p.ctx.PollDROM()
	switch code {
	case derr.Success:
		return n, m, true, nil
	case derr.NoUpdate:
		return 0, CPUSet{}, false, nil
	default:
		return 0, CPUSet{}, false, code.Err()
	}
}

// OnResize registers callbacks fired whenever the process's resources
// change (the programming-model integration surface of §4).
func (p *Process) OnResize(setNumThreads func(int), setMask func(CPUSet)) {
	p.ctx.SetCallbacks(dlbcore.Callbacks{
		SetNumThreads:  setNumThreads,
		SetProcessMask: setMask,
	})
}

// IntoBlockingCall marks the process blocked (the PMPI pre-hook):
// with LeWI enabled its CPUs are lent to the node pool. Returns the
// mask kept.
func (p *Process) IntoBlockingCall() CPUSet { return p.ctx.IntoBlockingCall() }

// OutOfBlockingCall reclaims the process's CPUs after a blocking call.
func (p *Process) OutOfBlockingCall() CPUSet { return p.ctx.OutOfBlockingCall() }

// Borrow asks LeWI for idle CPUs; returns what was acquired.
func (p *Process) Borrow() CPUSet { return p.ctx.Borrow() }

// RequestResize posts an evolving-application request for n CPUs (the
// PMIx-style model of §2: the application, not the manager, asks).
// The resource manager may grant it via a normal DROM mask change.
func (p *Process) RequestResize(n int) error { return p.ctx.RequestResize(n).Err() }

// Lend voluntarily lends CPUs to the node pool.
func (p *Process) Lend(mask CPUSet) { p.ctx.Lend(mask) }

// Finalize unregisters the process (DLB_Finalize).
func (p *Process) Finalize() error {
	return p.ctx.Finalize().Err()
}

// Context exposes the underlying DLB context for the programming-model
// integration packages (internal/omprt, internal/ompss,
// internal/mpisim) and for tests. Applications normally do not need
// it.
func (p *Process) Context() *dlbcore.Context { return p.ctx }
