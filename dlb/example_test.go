package dlb_test

import (
	"fmt"

	"repro/dlb"
	"repro/drom"
)

// Example reproduces Listing 1 of the paper: an iterative application
// polling DROM at its safe points while an administrator changes its
// CPUs.
func Example() {
	node := dlb.NewNode("node0", 16)

	// DLB_Init with DROM support.
	proc, _ := dlb.Init(node, 0, node.AllCPUs(), "--drom")
	defer proc.Finalize()

	// The resource manager shrinks the process to one socket.
	admin, _ := drom.Attach(node)
	admin.SetProcessMask(proc.PID(), dlb.CPURange(0, 7), drom.None)

	// Main loop: DLB_PollDROM before the parallel region.
	for i := 0; i < 2; i++ {
		if ncpus, mask, ok, _ := proc.PollDROM(); ok {
			fmt.Printf("iteration %d: adapted to %d CPUs (%s)\n", i, ncpus, mask)
		}
	}
	// Output:
	// iteration 0: adapted to 8 CPUs (0-7)
}

// ExampleProcess_IntoBlockingCall shows LeWI lending CPUs while a
// process blocks, and a peer borrowing them.
func ExampleProcess_IntoBlockingCall() {
	node := dlb.NewNode("node0", 8)
	p1, _ := dlb.Init(node, 0, dlb.CPURange(0, 3), "--drom --lewi")
	defer p1.Finalize()
	p2, _ := dlb.Init(node, 0, dlb.CPURange(4, 7), "--drom --lewi")
	defer p2.Finalize()

	kept := p1.IntoBlockingCall() // entering MPI: lend all but one
	fmt.Printf("blocked process keeps %s\n", kept)
	got := p2.Borrow()
	fmt.Printf("peer borrows %d CPUs -> %d total\n", got.Count(), p2.NumCPUs())
	// Output:
	// blocked process keeps 0
	// peer borrows 3 CPUs -> 7 total
}
